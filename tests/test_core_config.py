"""Unit tests for the SeeMoRe configuration, modes, and role functions."""

import pytest

from repro.core import Mode, SeeMoReConfig


def make_config(c=1, m=1, private=None, public=None):
    if private is None and public is None:
        return SeeMoReConfig.build(c, m)
    return SeeMoReConfig(
        private_replicas=tuple(private),
        public_replicas=tuple(public),
        crash_tolerance=c,
        byzantine_tolerance=m,
    )


class TestMode:
    def test_mode_properties(self):
        assert Mode.LION.has_trusted_primary
        assert Mode.DOG.has_trusted_primary
        assert not Mode.PEACOCK.has_trusted_primary
        assert not Mode.LION.uses_proxies
        assert Mode.DOG.uses_proxies
        assert Mode.PEACOCK.uses_proxies

    def test_phases_match_table1(self):
        assert Mode.LION.communication_phases == 2
        assert Mode.DOG.communication_phases == 2
        assert Mode.PEACOCK.communication_phases == 3

    def test_message_complexity_matches_table1(self):
        assert Mode.LION.message_complexity == "O(n)"
        assert Mode.DOG.message_complexity == "O(n^2)"
        assert Mode.PEACOCK.message_complexity == "O(n^2)"

    def test_describe_mentions_key_fact(self):
        assert "trusted primary" in Mode.LION.describe()
        assert "untrusted primary" in Mode.PEACOCK.describe()


class TestConfigConstruction:
    def test_build_uses_paper_layout(self):
        config = SeeMoReConfig.build(1, 1)
        # 2c private, 3m+1 public, N = 3m+2c+1 = 6.
        assert config.private_size == 2
        assert config.public_size == 4
        assert config.network_size == 6
        assert config.network_size == config.minimum_network_size

    def test_build_scales_with_tolerances(self):
        config = SeeMoReConfig.build(2, 2)
        assert config.network_size == 11
        config = SeeMoReConfig.build(1, 3)
        assert config.network_size == 12
        config = SeeMoReConfig.build(3, 1)
        assert config.network_size == 10

    def test_rejects_network_below_minimum(self):
        with pytest.raises(ValueError):
            make_config(c=1, m=1, private=["p0", "p1"], public=["u0", "u1"])

    def test_rejects_overlapping_clouds(self):
        with pytest.raises(ValueError):
            make_config(c=1, m=1, private=["x", "p1"], public=["x", "u1", "u2", "u3"])

    def test_rejects_no_private_replicas(self):
        with pytest.raises(ValueError):
            make_config(c=0, m=1, private=[], public=["u0", "u1", "u2", "u3"])

    def test_rejects_insufficient_private_cloud_for_crashes(self):
        with pytest.raises(ValueError):
            make_config(c=2, m=1, private=["p0", "p1"], public=["u0", "u1", "u2", "u3", "u4"])

    def test_rejects_insufficient_public_cloud_for_proxies(self):
        with pytest.raises(ValueError):
            make_config(c=2, m=1, private=["p0", "p1", "p2", "p3"], public=["u0", "u1", "u2"])

    def test_rejects_negative_tolerances(self):
        with pytest.raises(ValueError):
            SeeMoReConfig.build(-1, 1)

    def test_rejects_bad_checkpoint_period(self):
        with pytest.raises(ValueError):
            SeeMoReConfig.build(1, 1, checkpoint_period=0)

    def test_is_trusted(self):
        config = SeeMoReConfig.build(1, 1)
        assert config.is_trusted(config.private_replicas[0])
        assert not config.is_trusted(config.public_replicas[0])


class TestQuorums:
    def test_quorum_sizes_match_table1(self):
        config = SeeMoReConfig.build(1, 1)
        assert config.quorum_size(Mode.LION) == 4          # 2m+c+1
        assert config.quorum_size(Mode.DOG) == 3           # 2m+1
        assert config.quorum_size(Mode.PEACOCK) == 3       # 2m+1

    def test_receiving_network_size_matches_table1(self):
        config = SeeMoReConfig.build(1, 1)
        assert config.receiving_network_size(Mode.LION) == 6       # 3m+2c+1
        assert config.receiving_network_size(Mode.DOG) == 4        # 3m+1
        assert config.receiving_network_size(Mode.PEACOCK) == 4    # 3m+1

    def test_client_reply_quorums(self):
        config = SeeMoReConfig.build(1, 2)
        assert config.client_reply_quorum(Mode.LION) == 1
        assert config.client_reply_quorum(Mode.DOG) == 5    # 2m+1
        assert config.client_reply_quorum(Mode.PEACOCK) == 3  # m+1

    def test_inform_quorums(self):
        config = SeeMoReConfig.build(1, 2)
        assert config.inform_quorum(Mode.DOG) == 5
        assert config.inform_quorum(Mode.PEACOCK) == 3

    def test_proxy_count(self):
        assert SeeMoReConfig.build(1, 1).proxy_count == 4
        assert SeeMoReConfig.build(1, 3).proxy_count == 10


class TestRoles:
    def setup_method(self):
        self.config = SeeMoReConfig.build(2, 1)  # S=4, P=4

    def test_trusted_primary_rotates_over_private_cloud(self):
        primaries = {self.config.primary_of_view(v, Mode.LION) for v in range(8)}
        assert primaries == set(self.config.private_replicas)

    def test_peacock_primary_rotates_over_public_cloud(self):
        primaries = {self.config.primary_of_view(v, Mode.PEACOCK) for v in range(8)}
        assert primaries == set(self.config.public_replicas)

    def test_transferer_is_trusted(self):
        for view in range(8):
            assert self.config.is_trusted(self.config.transferer_of_view(view))

    def test_negative_view_rejected(self):
        with pytest.raises(ValueError):
            self.config.primary_of_view(-1, Mode.LION)
        with pytest.raises(ValueError):
            self.config.transferer_of_view(-1)

    def test_lion_has_no_proxies(self):
        assert self.config.proxies_of_view(0, Mode.LION) == []

    def test_proxies_are_public_and_correct_count(self):
        for view in range(6):
            proxies = self.config.proxies_of_view(view, Mode.DOG)
            assert len(proxies) == self.config.proxy_count
            assert all(not self.config.is_trusted(p) for p in proxies)

    def test_peacock_primary_is_always_a_proxy(self):
        for view in range(8):
            primary = self.config.primary_of_view(view, Mode.PEACOCK)
            assert primary in self.config.proxies_of_view(view, Mode.PEACOCK)

    def test_participants_lion_is_everyone(self):
        assert set(self.config.participants(0, Mode.LION)) == set(self.config.all_replicas)

    def test_participants_dog_is_primary_plus_proxies(self):
        participants = self.config.participants(0, Mode.DOG)
        assert self.config.primary_of_view(0, Mode.DOG) in participants
        assert len(participants) == 1 + self.config.proxy_count

    def test_participants_peacock_is_proxies_only(self):
        participants = self.config.participants(0, Mode.PEACOCK)
        assert all(not self.config.is_trusted(p) for p in participants)
        assert len(participants) == self.config.proxy_count

    def test_passive_replicas_complement_participants(self):
        for mode in (Mode.LION, Mode.DOG, Mode.PEACOCK):
            participants = set(self.config.participants(0, mode))
            passive = set(self.config.passive_replicas(0, mode))
            assert participants | passive == set(self.config.all_replicas)
            assert participants & passive == set()

    def test_proxy_rotation_changes_with_view(self):
        config = SeeMoReConfig.build(1, 1, public_size=6)
        first = config.proxies_of_view(0, Mode.PEACOCK)
        second = config.proxies_of_view(1, Mode.PEACOCK)
        assert first != second
