"""Unit tests for the crypto substrate: digests, signatures, keys, costs."""

import pytest

from repro.crypto import (
    CryptoCostModel,
    InvalidSignatureError,
    KeyStore,
    digest,
    digest_bytes,
)


class TestDigest:
    def test_digest_is_stable(self):
        assert digest({"a": 1}) == digest({"a": 1})

    def test_digest_key_order_independent(self):
        assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})

    def test_digest_differs_for_different_content(self):
        assert digest({"a": 1}) != digest({"a": 2})

    def test_digest_of_string_and_bytes(self):
        assert digest("hello") == digest_bytes(b"hello")

    def test_digest_of_object_with_to_wire(self):
        class Msg:
            def to_wire(self):
                return {"x": 42}

        assert digest(Msg()) == digest({"x": 42})

    def test_digest_hex_length(self):
        assert len(digest("x")) == 64


class TestKeyStoreAndSignatures:
    def setup_method(self):
        self.keystore = KeyStore()
        for node in ("r0", "r1", "r2"):
            self.keystore.register(node)
        self.verifier = self.keystore.verifier()

    def test_sign_and_verify_roundtrip(self):
        signer = self.keystore.signer_for("r0")
        signature = signer.sign({"op": "put"})
        assert self.verifier.verify({"op": "put"}, signature)

    def test_verify_fails_for_tampered_message(self):
        signer = self.keystore.signer_for("r0")
        signature = signer.sign({"op": "put"})
        assert not self.verifier.verify({"op": "delete"}, signature)

    def test_forged_signature_rejected(self):
        attacker = self.keystore.signer_for("r2")
        forged = attacker.forge({"op": "put"}, claimed_signer="r0")
        assert not self.verifier.verify({"op": "put"}, forged)

    def test_unknown_signer_rejected(self):
        signer = self.keystore.signer_for("r0")
        signature = signer.sign("msg")
        stranger_verifier = KeyStore(seed="other").verifier()
        assert not stranger_verifier.verify("msg", signature)

    def test_require_valid_raises(self):
        attacker = self.keystore.signer_for("r2")
        forged = attacker.forge("msg", claimed_signer="r0")
        with pytest.raises(InvalidSignatureError):
            self.verifier.require_valid("msg", forged)

    def test_register_is_idempotent(self):
        self.keystore.register("r0")
        assert self.keystore.knows("r0")

    def test_signer_for_unknown_node_raises(self):
        with pytest.raises(KeyError):
            self.keystore.signer_for("nope")

    def test_node_ids_sorted(self):
        assert self.keystore.node_ids == ["r0", "r1", "r2"]

    def test_deterministic_keys_across_stores_with_same_seed(self):
        other = KeyStore()
        other.register("r0")
        signature = self.keystore.signer_for("r0").sign("hello")
        assert other.verifier().verify("hello", signature)

    def test_different_seeds_give_different_keys(self):
        other = KeyStore(seed="different")
        other.register("r0")
        signature = self.keystore.signer_for("r0").sign("hello")
        assert not other.verifier().verify("hello", signature)


class TestCryptoCostModel:
    def test_digest_cost_grows_with_size(self):
        costs = CryptoCostModel()
        assert costs.digest_cost(4096) > costs.digest_cost(0)

    def test_digest_cost_negative_size_rejected(self):
        with pytest.raises(ValueError):
            CryptoCostModel().digest_cost(-1)

    def test_scaled_multiplies_all_costs(self):
        costs = CryptoCostModel()
        doubled = costs.scaled(2.0)
        assert doubled.sign_cost == pytest.approx(2 * costs.sign_cost)
        assert doubled.verify_cost == pytest.approx(2 * costs.verify_cost)
        assert doubled.mac_cost == pytest.approx(2 * costs.mac_cost)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            CryptoCostModel().scaled(-1.0)

    def test_sign_more_expensive_than_mac(self):
        costs = CryptoCostModel()
        assert costs.sign_cost > costs.mac_cost
        assert costs.verify_cost > costs.mac_cost
