"""The open-loop workload engine: arrivals, population, and memory bounds."""

import random
import tracemalloc

import pytest

from repro.workload import Workload
from repro.workload.openloop import (
    BurstyArrivals,
    ClientPopulation,
    DiurnalArrivals,
    PoissonArrivals,
    _ZipfSampler,
    workload_operation_source,
)

pytestmark = pytest.mark.openloop


def _arrival_times(process, count):
    times = []
    t = 0.0
    for _ in range(count):
        t = process.next_after(t)
        times.append(t)
    return times


class TestPoissonArrivals:
    def test_same_seed_same_stream(self):
        first = _arrival_times(PoissonArrivals(rate=100.0, seed=5), 200)
        second = _arrival_times(PoissonArrivals(rate=100.0, seed=5), 200)
        assert first == second

    def test_different_seed_different_stream(self):
        first = _arrival_times(PoissonArrivals(rate=100.0, seed=5), 50)
        second = _arrival_times(PoissonArrivals(rate=100.0, seed=6), 50)
        assert first != second

    def test_interarrival_mean_matches_rate(self):
        rate = 200.0
        times = _arrival_times(PoissonArrivals(rate=rate, seed=11), 5000)
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        # 5000 exponential samples: the sample mean is within a few percent
        # of 1/rate with overwhelming probability.
        assert mean == pytest.approx(1.0 / rate, rel=0.1)

    def test_strictly_increasing(self):
        times = _arrival_times(PoissonArrivals(rate=50.0, seed=2), 500)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)


class TestBurstyArrivals:
    def test_rate_tracks_phase(self):
        process = BurstyArrivals(
            base_rate=10.0, burst_rate=100.0, on_duration=1.0, off_duration=1.0
        )
        assert process.rate_at(0.5) == 100.0  # burst first
        assert process.rate_at(1.5) == 10.0
        assert process.rate_at(2.5) == 100.0  # periodic

    def test_bursts_are_denser(self):
        process = BurstyArrivals(
            base_rate=20.0, burst_rate=400.0, on_duration=1.0, off_duration=1.0, seed=3
        )
        times = _arrival_times(process, 2000)
        in_burst = sum(1 for t in times if (t % 2.0) < 1.0)
        off = len(times) - in_burst
        assert in_burst > 5 * off

    def test_deterministic(self):
        kwargs = dict(
            base_rate=5.0, burst_rate=50.0, on_duration=0.5, off_duration=1.5, seed=9
        )
        assert _arrival_times(BurstyArrivals(**kwargs), 300) == _arrival_times(
            BurstyArrivals(**kwargs), 300
        )


class TestDiurnalArrivals:
    def test_integrates_to_daily_volume(self):
        daily = 20_000
        process = DiurnalArrivals(daily_volume=daily, day_length=50.0, seed=4)
        count = 0
        t = 0.0
        while True:
            t = process.next_after(t)
            if t >= 50.0:
                break
            count += 1
        # One simulated day of a Poisson process with total intensity
        # `daily`: the count concentrates tightly around the mean.
        assert count == pytest.approx(daily, rel=0.05)

    def test_peak_rate_bounds_instantaneous_rate(self):
        process = DiurnalArrivals(daily_volume=1000, day_length=10.0, amplitude=0.8)
        peak = process.peak_rate()
        for step in range(100):
            assert process.rate_at(step * 0.1) <= peak + 1e-9

    def test_deterministic(self):
        first = _arrival_times(DiurnalArrivals(daily_volume=5000, day_length=20.0, seed=8), 400)
        second = _arrival_times(DiurnalArrivals(daily_volume=5000, day_length=20.0, seed=8), 400)
        assert first == second


class TestZipfSampler:
    def test_skew_toward_low_ranks(self):
        sampler = _ZipfSampler(1_000_000, theta=0.99)
        rng = random.Random(17)
        counts = {}
        for _ in range(20_000):
            rank = sampler.sample(rng)
            assert 0 <= rank < 1_000_000
            counts[rank] = counts.get(rank, 0) + 1
        assert counts.get(0, 0) > counts.get(100, 0)
        # Rank 0 of a theta=0.99 zipfian over 1M items draws several
        # percent of all samples.
        assert counts[0] > 200

    def test_deterministic_given_rng_seed(self):
        sampler = _ZipfSampler(10_000, theta=0.9)
        first = [sampler.sample(random.Random(3)) for _ in range(1)]
        second = [sampler.sample(random.Random(3)) for _ in range(1)]
        assert first == second


class TestClientPopulation:
    def test_events_monotone_and_deterministic(self):
        def draw(seed):
            population = ClientPopulation(
                num_users=1_000_000,
                arrivals=PoissonArrivals(rate=500.0, seed=seed),
                seed=seed,
            )
            return [population.next_event() for _ in range(500)]

        events = draw(21)
        times = [t for t, _ in events]
        assert times == sorted(times)
        assert events == draw(21)
        users = {user for _, user in events}
        assert len(users) > 50  # many distinct users, zipf-skewed
        assert all(0 <= user < 1_000_000 for _, user in events)

    def test_million_users_memory_is_o_active(self):
        """The population must not materialize per-user state.

        A naive per-user table at 1M users costs tens of MB; the arrival
        process + zipf sampler representation is O(1) in the user count
        (a few exact zeta terms), so even a generous bound separates the
        two designs by orders of magnitude.
        """
        tracemalloc.start()
        try:
            population = ClientPopulation(
                num_users=2_000_000,
                arrivals=PoissonArrivals(rate=1000.0, seed=1),
                seed=1,
            )
            for _ in range(5000):
                population.next_event()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < 4 * 1024 * 1024, f"peak {peak} bytes is not O(active)"

    def test_uniform_distribution_supported(self):
        population = ClientPopulation(
            num_users=100,
            arrivals=PoissonArrivals(rate=10.0, seed=2),
            user_distribution="uniform",
        )
        users = {population.next_event()[1] for _ in range(500)}
        assert len(users) > 50


class TestOperationSource:
    def test_per_user_factories_and_lru(self):
        workload = Workload.build("0/0")
        source = workload_operation_source(workload, cache_size=2)
        assert source(0) is not None
        assert source(1) is not None
        assert source(2) is not None  # evicts user 0
        assert source(0) is not None  # rebuilt, still works
