"""Batch-amortized signature verification: fallback isolation and evidence.

The :class:`~repro.crypto.signatures.WindowVerifier` fronts every replica's
and client's signature checks.  Its fast paths (per-sender windows, group
MACs over memo-warm signatures) only amortize *bookkeeping* — soundness
requires that any anomaly falls back to the reference per-message path and
isolates exactly the tampered messages.  These tests pin:

* ``verify_batch`` returns exactly the tampered indices, for every way a
  message can be bad (corrupted tag, content mutated after signing, forged
  signer, unknown signer);
* every ``faults/byzantine.py`` twist is still detected end-to-end now
  that twists decode-and-re-encode wire frames;
* the ``EvidenceLog`` invalid-signature records a deployment emits are
  *identical* under windowed and under per-message verification.
"""

import pytest

from repro.adaptive.evidence import EvidenceKind
from repro.cluster import build_seemore, run_deployment
from repro.core import BatchPolicy, Mode
from repro.crypto import KeyStore
from repro.crypto.signatures import Signature, WindowVerifier
from repro.faults import make_byzantine
from repro.smr.ledger import assert_ledgers_consistent
from repro.smr.messages import Request
from repro.smr.state_machine import Operation
from repro.workload import microbenchmark

BATCHING = BatchPolicy(max_batch=4, linger=0.001)


def build(mode, **kwargs):
    return build_seemore(
        crash_tolerance=1,
        byzantine_tolerance=1,
        mode=mode,
        workload=microbenchmark("0/0"),
        num_clients=kwargs.pop("num_clients", 2),
        seed=kwargs.pop("seed", 33),
        client_timeout=kwargs.pop("client_timeout", 0.1),
        batch_policy=kwargs.pop("batch_policy", BATCHING),
        client_window=kwargs.pop("client_window", 4),
        **kwargs,
    )


def signed_requests(signer, client_id, count):
    requests = []
    for index in range(count):
        request = Request(
            operation=Operation("put", (f"k{index}", f"v{index}")),
            timestamp=index + 1,
            client_id=client_id,
        )
        request.sign(signer)
        requests.append(request)
    return requests


@pytest.fixture
def channel():
    keystore = KeyStore()
    keystore.register("sender")
    signer = keystore.signer_for("sender")
    verifier = keystore.verifier()
    return signer, verifier, WindowVerifier(verifier)


class TestBatchFallbackIsolation:
    def test_all_valid_messages_take_the_group_fast_path(self, channel):
        signer, _, window = channel
        messages = signed_requests(signer, "sender", 8)
        assert window.verify_batch("sender", messages) == []
        assert window.fallback_verifications == 0
        assert window.messages_verified == 8

    def test_content_tampering_is_isolated_to_the_exact_index(self, channel):
        signer, _, window = channel
        messages = signed_requests(signer, "sender", 8)
        # Mutate content after signing: the wire caches drop, the recomputed
        # frame digest no longer matches the signed digest.
        messages[5].timestamp = 999
        assert window.verify_batch("sender", messages) == [5]
        assert window.fallback_verifications == 8

    def test_corrupted_signature_is_isolated_to_the_exact_index(self, channel):
        signer, _, window = channel
        messages = signed_requests(signer, "sender", 6)
        good = messages[2].signature
        messages[2].signature = Signature(
            signer_id=good.signer_id, payload_digest=good.payload_digest, tag="0" * 64
        )
        assert window.verify_batch("sender", messages) == [2]

    def test_multiple_tampered_messages_are_all_isolated(self, channel):
        signer, _, window = channel
        messages = signed_requests(signer, "sender", 8)
        messages[1].timestamp = 101
        messages[4].timestamp = 104
        messages[7].signature = None
        assert window.verify_batch("sender", messages) == [1, 4, 7]

    def test_wrong_claimed_signer_fails_every_message_it_signed(self, channel):
        signer, verifier, _ = channel
        window = WindowVerifier(verifier)
        messages = signed_requests(signer, "sender", 4)
        assert window.verify_batch("someone-else", messages) == [0, 1, 2, 3]

    def test_unknown_signer_has_no_fast_path_and_no_false_accepts(self, channel):
        signer, verifier, window = channel
        messages = signed_requests(signer, "sender", 3)
        ghost = WindowVerifier(verifier)
        assert ghost.verify_batch("ghost", messages) == [0, 1, 2]

    def test_unsigned_messages_pass_without_crypto(self, channel):
        signer, _, window = channel
        messages = signed_requests(signer, "sender", 4)
        for message in messages:
            message.signed = False
            message.signature = None
        assert window.verify_batch("sender", messages) == []
        assert window.messages_verified == 0  # nothing needed verification

    def test_batch_verdicts_match_the_reference_path_exactly(self, channel):
        signer, verifier, window = channel
        messages = signed_requests(signer, "sender", 10)
        messages[0].timestamp = 100
        messages[3].signature = Signature("sender", "bogus-digest", "f" * 64)
        messages[9].signed = False
        reference = [
            index
            for index, message in enumerate(messages)
            if not message.verify(verifier, expected_signer="sender")
        ]
        assert window.verify_batch("sender", messages) == reference


class TestWindowSealing:
    def test_windows_seal_into_a_rolling_transcript(self, channel):
        signer, verifier, _ = channel
        window = WindowVerifier(verifier, window=4)
        messages = signed_requests(signer, "sender", 9)
        for message in messages:
            assert window.verify("sender", message)
        assert window.windows_sealed == 2
        assert window.transcript_tag("sender") != b""

    def test_transcripts_depend_on_the_accepted_digest_sequence(self, channel):
        signer, verifier, _ = channel
        first = WindowVerifier(verifier, window=2)
        second = WindowVerifier(verifier, window=2)
        messages = signed_requests(signer, "sender", 4)
        for message in messages:
            assert first.verify("sender", message)
        for message in reversed(messages):
            assert second.verify("sender", message)
        assert first.transcript_tag("sender") != second.transcript_tag("sender")

    def test_rejected_messages_never_enter_the_window(self, channel):
        signer, verifier, _ = channel
        window = WindowVerifier(verifier, window=2)
        messages = signed_requests(signer, "sender", 2)
        messages[1].timestamp = 999
        assert window.verify("sender", messages[0])
        assert not window.verify("sender", messages[1])
        assert window.windows_sealed == 0  # the bad message did not fill it


class _PerMessageVerifier:
    """Reference front: every check goes through the per-message path."""

    def __init__(self, verifier):
        self._verifier = verifier

    def verify(self, signer_id, message):
        return message.verify(self._verifier, expected_signer=signer_id)

    def verify_batch(self, signer_id, messages):
        return [
            index
            for index, message in enumerate(messages)
            if not message.verify(self._verifier, expected_signer=signer_id)
        ]


def _invalid_signature_records(deployment):
    return sorted(
        (replica.node_id, record.suspect, record.detail)
        for replica in deployment.replicas.values()
        for record in replica.evidence.records
        if record.kind is EvidenceKind.INVALID_SIGNATURE
    )


def _run_corrupt_scenario(mode, per_message: bool):
    deployment = build(mode, num_clients=2)
    if per_message:
        for replica in deployment.replicas.values():
            replica.window_verifier = _PerMessageVerifier(replica.verifier)
        for client in deployment.clients:
            client._window_verifier = _PerMessageVerifier(client.verifier)
    config = deployment.extras["config"]
    make_byzantine(deployment, config.public_replicas[0], "corrupt")
    result = run_deployment(deployment, duration=0.4, warmup=0.0)
    return deployment, result


class TestEvidenceParity:
    """Windowed verification must emit *exactly* the reference evidence."""

    @pytest.mark.parametrize("mode", [Mode.DOG, Mode.PEACOCK])
    def test_invalid_signature_records_are_identical(self, mode):
        windowed_deployment, windowed_result = _run_corrupt_scenario(mode, False)
        reference_deployment, reference_result = _run_corrupt_scenario(mode, True)
        windowed = _invalid_signature_records(windowed_deployment)
        reference = _invalid_signature_records(reference_deployment)
        assert windowed == reference
        assert windowed, "the corrupt replica must actually be flagged"
        assert windowed_result.completed == reference_result.completed

    def test_honest_runs_emit_no_invalid_signature_evidence(self):
        deployment = build(Mode.DOG)
        run_deployment(deployment, duration=0.3, warmup=0.0)
        assert _invalid_signature_records(deployment) == []


class TestTwistsStayDetectedPostCodec:
    """Byzantine twists now decode-and-re-encode wire frames; every attack
    must still trip the same checkers it did pre-codec."""

    def test_corrupt_signatures_are_flagged_and_absorbed(self):
        deployment, result = _run_corrupt_scenario(Mode.DOG, False)
        flagged = _invalid_signature_records(deployment)
        config = deployment.extras["config"]
        assert any(suspect == config.public_replicas[0] for _, suspect, _ in flagged)
        assert result.completed > 0
        assert_ledgers_consistent(
            [r.ledger for r in deployment.correct_replicas()]
        )

    @pytest.mark.parametrize("mode", [Mode.DOG, Mode.PEACOCK])
    def test_equivocation_never_splits_correct_ledgers(self, mode):
        deployment = build(mode, num_clients=2)
        config = deployment.extras["config"]
        victim = (
            config.primary_of_view(0, mode)
            if mode is Mode.PEACOCK
            else config.public_replicas[0]
        )
        make_byzantine(deployment, victim, "equivocate")
        result = run_deployment(deployment, duration=0.5, warmup=0.0)
        assert result.completed > 0
        assert_ledgers_consistent(
            [r.ledger for r in deployment.correct_replicas()]
        )

    def test_lying_replica_never_fools_a_client(self):
        deployment = build(Mode.DOG, num_clients=2)
        config = deployment.extras["config"]
        liar = config.public_replicas[0]
        make_byzantine(deployment, liar, "lie")
        result = run_deployment(deployment, duration=0.5, warmup=0.0)
        assert result.completed > 0
        # Forged results are the liar's own signed replies; the reply
        # quorum (2m+1 matching result digests) can never be met by them.
        for client in deployment.clients:
            for record in client.completed:
                assert record.completed_at >= record.sent_at
        assert_ledgers_consistent(
            [r.ledger for r in deployment.correct_replicas()]
        )


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
