"""Integration tests for sharded deployments: routing, 2PC, faults, metrics."""

import pytest

from repro.cluster import build_sharded_seemore, run_deployment, run_sharded_deployment
from repro.core import Mode
from repro.shard import ShardSpec
from repro.workload import sharded_kv_workload

pytestmark = [pytest.mark.shard, pytest.mark.integration]


def _build(num_shards=2, **kwargs):
    kwargs.setdefault("num_clients", 3)
    kwargs.setdefault("seed", 11)
    kwargs.setdefault("client_window", 2)
    kwargs.setdefault("txn_timeout", 0.3)
    return build_sharded_seemore(num_shards=num_shards, **kwargs)


class TestShardedDeploymentBasics:
    def test_shards_share_one_fabric_with_distinct_replicas(self):
        deployment = _build(num_shards=3)
        assert deployment.num_shards == 3
        all_ids = [rid for shard in deployment.shards for rid in shard.replicas]
        assert len(all_ids) == len(set(all_ids))
        assert all(
            shard.simulator is deployment.simulator and shard.network is deployment.network
            for shard in deployment.shards
        )

    def test_per_shard_specs_configure_modes_independently(self):
        specs = (ShardSpec(mode=Mode.LION), ShardSpec(mode=Mode.PEACOCK, byzantine_tolerance=2))
        deployment = _build(shard_specs=specs, num_shards=None)
        assert deployment.shards[0].extras["mode"] is Mode.LION
        assert deployment.shards[1].extras["mode"] is Mode.PEACOCK
        assert deployment.shards[1].extras["config"].byzantine_tolerance == 2

    def test_rejects_empty_spec_list(self):
        with pytest.raises(ValueError):
            build_sharded_seemore(shard_specs=())

    def test_per_shard_pools_refuse_to_spawn_unrouted_clients(self):
        # An unrouted single-cluster client would aim every key at one
        # shard, silently breaking the keyspace partition — the per-shard
        # pools must fail loudly instead.
        deployment = _build(num_shards=2)
        with pytest.raises(RuntimeError, match="routed"):
            deployment.shards[0].client_pool.spawn(1)
        with pytest.raises(RuntimeError, match="routed"):
            deployment.shards[0].add_clients(1)

    def test_surged_clients_route_through_the_partitioner(self):
        deployment = _build(
            num_shards=2, workload=sharded_kv_workload(seed=11, cross_shard_fraction=0.0)
        )
        deployment.start_clients()
        deployment.run(0.1)
        created = deployment.add_clients(2)
        assert all(client.router is deployment.router for client in created)
        before = [shard.metrics.completed for shard in deployment.shards]
        deployment.run(0.2)
        deployment.stop_clients()
        after = [shard.metrics.completed for shard in deployment.shards]
        # The surge reaches BOTH shards: routed traffic keeps the partition.
        assert all(later > earlier for earlier, later in zip(before, after))
        deployment.assert_safe()

    def test_sharded_workload_inherits_the_deployment_partitioner(self):
        workload = sharded_kv_workload(seed=1, cross_shard_fraction=0.5)
        assert workload.partitioner is None
        deployment = _build(workload=workload)
        assert deployment.client_pool.workload.partitioner is deployment.partitioner


class TestShardedRun:
    def test_load_spreads_and_aggregate_matches(self):
        deployment = _build(
            num_shards=2, workload=sharded_kv_workload(seed=11, cross_shard_fraction=0.0)
        )
        result = run_sharded_deployment(deployment, duration=0.25, warmup=0.05)
        assert result.aggregate.completed > 100
        per_shard = [summary.completed for summary in result.per_shard]
        assert all(count > 0 for count in per_shard)
        # With no cross-shard traffic every completion belongs to exactly
        # one shard, so the shard collectors partition the aggregate.
        assert sum(shard.metrics.completed for shard in deployment.shards) == (
            deployment.metrics.completed
        )

    def test_cross_shard_transactions_commit_on_every_participant(self):
        deployment = _build(
            num_shards=2,
            workload=sharded_kv_workload(seed=11, cross_shard_fraction=0.2),
        )
        result = run_sharded_deployment(deployment, duration=0.3, warmup=0.05)
        assert result.transactions["committed"] > 5
        assert result.transactions["aborted"] == 0
        assert result.atomicity_violations == 0
        # Every shard's correct replicas recorded the same decisions.
        for shard in deployment.shards:
            machines = [r.executor.state_machine for r in shard.correct_replicas()]
            assert machines[0].txn_decisions
            assert all(m.txn_decisions == machines[0].txn_decisions for m in machines)
            assert all(set(m.txn_decisions.values()) == {"commit"} for m in machines)

    def test_committed_transaction_writes_are_visible_on_both_shards(self):
        deployment = _build(
            num_shards=2,
            workload=sharded_kv_workload(seed=11, cross_shard_fraction=0.3, read_fraction=0.0),
        )
        run_sharded_deployment(deployment, duration=0.25, warmup=0.05)
        partitioner = deployment.partitioner
        # Collect one committed transaction from any client coordinator's
        # history via the state machines: pick a key of each shard that was
        # written and check the stores agree with their shard's ownership.
        for index, shard in enumerate(deployment.shards):
            store = shard.correct_replicas()[0].executor.state_machine
            written = [key for key in store.snapshot()["data"] if key.startswith("key-")]
            assert written, f"shard {index} never applied a write"
            assert all(partitioner.shard_of_key(key) == index for key in written)

    def test_run_deployment_duck_types_sharded_deployments(self):
        deployment = _build(num_shards=2)
        result = run_deployment(deployment, duration=0.2, warmup=0.05)
        assert result.protocol == "seemore-sharded-2x"
        assert result.completed > 30
        assert result.safety_violations == 0

    def test_mixed_modes_serve_one_keyspace(self):
        specs = (ShardSpec(mode=Mode.LION), ShardSpec(mode=Mode.DOG), ShardSpec(mode=Mode.PEACOCK))
        deployment = _build(
            shard_specs=specs,
            num_shards=None,
            num_clients=2,
            workload=sharded_kv_workload(seed=5, cross_shard_fraction=0.2),
        )
        result = run_sharded_deployment(deployment, duration=0.3, warmup=0.05)
        assert all(summary.completed > 0 for summary in result.per_shard)
        assert result.transactions["committed"] > 5
        assert result.atomicity_violations == 0


class TestShardedFaults:
    def test_whole_shard_crash_aborts_its_transactions_atomically(self):
        deployment = _build(
            num_shards=2,
            seed=3,
            num_clients=4,
            txn_timeout=0.1,
            workload=sharded_kv_workload(seed=3, cross_shard_fraction=0.3),
        )
        simulator = deployment.simulator

        def crash_shard_one():
            for replica_id in sorted(deployment.shards[1].replicas):
                deployment.shards[1].replicas[replica_id].crash()
                deployment.shards[1].mark_faulty(replica_id)

        simulator.call_at(0.15, crash_shard_one)
        deployment.start_clients()
        simulator.run(until=1.0)
        deployment.stop_clients()
        simulator.run(until=1.2)

        stats = deployment.transaction_stats()
        assert stats["aborted"] >= 1
        assert deployment.atomicity_violations() == []
        assert deployment.safety_violations() == []
        # The surviving shard kept serving its own keys throughout.
        assert deployment.shards[0].metrics.completed > 0

    def test_shard_primary_crash_recovers_via_view_change(self):
        deployment = _build(
            num_shards=2,
            seed=7,
            workload=sharded_kv_workload(seed=7, cross_shard_fraction=0.2),
        )
        simulator = deployment.simulator
        from repro.faults.crash import crash_primary

        simulator.call_at(0.2, lambda: crash_primary(deployment.shards[0]))
        deployment.start_clients()
        simulator.run(until=0.8)
        deployment.stop_clients()
        simulator.run(until=0.95)

        crashed_shard = deployment.shards[0]
        assert max(replica.view for replica in crashed_shard.correct_replicas()) >= 1
        completed_late = [
            record
            for client in deployment.clients
            for record in client.completed
            if record.completed_at > 0.5
        ]
        assert completed_late, "no progress after the shard's view change"
        deployment.assert_safe()
