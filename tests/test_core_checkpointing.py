"""Unit tests for checkpointing, garbage collection, and state transfer."""

import pytest

from repro.cluster import build_seemore, run_deployment
from repro.core import Mode
from repro.core.checkpointing import CheckpointManager
from repro.workload import microbenchmark


class TestCheckpointManager:
    def test_checkpoint_sequence_detection(self):
        manager = CheckpointManager(period=10)
        assert manager.is_checkpoint_sequence(10)
        assert manager.is_checkpoint_sequence(20)
        assert not manager.is_checkpoint_sequence(5)
        assert not manager.is_checkpoint_sequence(0)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            CheckpointManager(period=0)

    def test_vote_counting(self):
        manager = CheckpointManager(period=10)
        assert manager.record_vote(10, "digest-a", "r0") == 1
        assert manager.record_vote(10, "digest-a", "r1") == 2
        assert manager.record_vote(10, "digest-a", "r1") == 2  # duplicate voter
        assert manager.record_vote(10, "digest-b", "r2") == 1  # different digest
        assert manager.vote_count(10, "digest-a") == 2

    def test_mark_stable_moves_forward_only(self):
        manager = CheckpointManager(period=10)
        assert manager.mark_stable(10, "d1")
        assert not manager.mark_stable(10, "d1")
        assert not manager.mark_stable(5, "d0")
        assert manager.mark_stable(20, "d2")
        assert manager.stable_sequence == 20

    def test_mark_stable_discards_old_votes(self):
        manager = CheckpointManager(period=10)
        manager.record_vote(10, "d", "r0")
        manager.mark_stable(10, "d")
        assert manager.vote_count(10, "d") == 0

    def test_local_snapshots_keep_recent_two(self):
        manager = CheckpointManager(period=10)
        for sequence in (10, 20, 30):
            manager.record_local_checkpoint(sequence, f"d{sequence}", {"state": sequence})
        assert manager.snapshot_at(10) is None
        assert manager.snapshot_at(20) == {"state": 20}
        assert manager.snapshot_at(30) == {"state": 30}
        latest_sequence, latest = manager.latest_snapshot()
        assert latest_sequence == 30
        assert latest == {"state": 30}

    def test_latest_snapshot_when_empty(self):
        sequence, snapshot = CheckpointManager(period=10).latest_snapshot()
        assert sequence == 0
        assert snapshot is None


@pytest.mark.integration
class TestCheckpointingInDeployment:
    """Checkpoints are produced, become stable, and garbage-collect logs."""

    @pytest.mark.parametrize(
        "mode",
        [
            Mode.LION,
            pytest.param(Mode.DOG, marks=pytest.mark.slow),
            pytest.param(Mode.PEACOCK, marks=pytest.mark.slow),
        ],
    )
    def test_checkpoints_become_stable_and_gc_runs(self, mode):
        deployment = build_seemore(
            crash_tolerance=1,
            byzantine_tolerance=1,
            mode=mode,
            workload=microbenchmark("0/0"),
            num_clients=4,
            checkpoint_period=32,
            seed=2,
        )
        result = run_deployment(deployment, duration=0.6, warmup=0.1)
        assert result.completed > 64, "need enough requests to cross checkpoint boundaries"
        stable = [r.checkpoints.stable_sequence for r in deployment.correct_replicas()]
        assert max(stable) >= 32, (
            f"{mode.name}: at least one replica should have a stable checkpoint"
        )
        # Garbage collection: slots below the stable checkpoint are discarded.
        for replica in deployment.correct_replicas():
            if replica.checkpoints.stable_sequence > 0:
                assert replica.slots.low_watermark == replica.checkpoints.stable_sequence

    @pytest.mark.slow
    def test_checkpoint_digests_agree_across_replicas(self):
        deployment = build_seemore(
            crash_tolerance=1,
            byzantine_tolerance=1,
            mode=Mode.LION,
            workload=microbenchmark("0/0"),
            num_clients=4,
            checkpoint_period=32,
            seed=3,
        )
        run_deployment(deployment, duration=0.6, warmup=0.1)
        digests = {}
        for replica in deployment.correct_replicas():
            manager = replica.checkpoints
            if manager.stable_sequence:
                digests.setdefault(manager.stable_sequence, set()).add(manager.stable_digest)
        assert digests, "at least one stable checkpoint expected"
        for sequence, observed in digests.items():
            assert len(observed) == 1, f"checkpoint digests diverged at {sequence}"
