"""Scenario gates for the adaptive controller (the acceptance criteria).

The library in :mod:`repro.scenarios.adaptive` runs a live controller
against injected fault environments; these tests assert the full
escalate→de-escalate cycle, the no-flapping property under an oscillating
attacker, churn/malice discrimination under a view-change storm, and
per-shard divergence -- all with zero invariant-checker violations.
"""

import pytest

from repro.scenarios.adaptive import (
    ADAPTIVE_SCENARIOS,
    CONTROLLER_UNDER_VIEW_CHANGE_STORM,
    DEESCALATE_AFTER_QUIET_PERIOD,
    ESCALATE_ON_EQUIVOCATION,
    OSCILLATING_ATTACKER_MUST_NOT_FLAP,
    run_adaptive_scenario,
    run_per_shard_divergence,
)

pytestmark = [pytest.mark.adaptive, pytest.mark.integration]


@pytest.fixture(scope="module")
def library_results():
    """Run the single-cluster adaptive library once; tests assert on the cache."""
    return {
        name: run_adaptive_scenario(scenario)
        for name, scenario in ADAPTIVE_SCENARIOS.items()
    }


class TestAdaptiveScenarioLibrary:
    def test_library_is_large_enough(self):
        # Four single-cluster scenarios plus the sharded divergence one.
        assert len(ADAPTIVE_SCENARIOS) >= 4

    @pytest.mark.parametrize("name", sorted(ADAPTIVE_SCENARIOS))
    def test_library_scenario_upholds_every_invariant(self, library_results, name):
        library_results[name].assert_ok()

    def test_escalation_reaches_peacock_with_zero_violations(self, library_results):
        result = library_results[ESCALATE_ON_EQUIVOCATION.name]
        assert result.invariant_violations == {}
        assert "PEACOCK" in result.final_modes

    def test_full_cycle_returns_to_lion(self, library_results):
        """The acceptance gate: Lion → Peacock on injected equivocation,
        back to Lion after the quiet period, no checker violations."""
        result = library_results[DEESCALATE_AFTER_QUIET_PERIOD.name]
        assert result.invariant_violations == {}
        assert result.final_modes == ("LION",)
        # Both the escalation and the de-escalation really happened.
        labels = [label for _, label in result.events_applied]
        assert any("byzantine" in label for label in labels)
        assert any("restore-honest" in label for label in labels)

    def test_oscillating_attacker_does_not_flap(self, library_results):
        result = library_results[OSCILLATING_ATTACKER_MUST_NOT_FLAP.name]
        assert result.invariant_violations == {}
        # The TransitionsAtMost expectation inside the scenario is the
        # gate; reaching here without failures means no flapping.
        assert result.ok

    def test_view_change_storm_never_escalates_to_peacock(self, library_results):
        result = library_results[CONTROLLER_UNDER_VIEW_CHANGE_STORM.name]
        assert result.invariant_violations == {}
        assert "PEACOCK" not in result.final_modes


class TestPerShardDivergence:
    def test_only_the_attacked_shard_escalates(self):
        result = run_per_shard_divergence()
        result.assert_ok()
        # Cross-shard transactions kept committing across the divergence.
        assert result.transactions["committed"] >= 1
