"""Timer semantics are identical on every runtime backend.

The :class:`repro.runtime.api.TimerHandle` contract (idempotent stop,
restart racing expiry, disarm-before-fire, timers surviving a CPU crash)
is what the protocol's view-change and retransmission logic leans on.
Each scenario here runs once per backend through a shared driver: the sim
backend advances virtual time, the aio backend runs the real event loop
for a fraction of a second, and the proc backend runs the same scenario
inside a supervised worker process (results are snapshotted to picklable
stand-ins before crossing the process boundary).
"""

import multiprocessing

import pytest

from repro.runtime.aio import AioRuntime
from repro.runtime.sim import SimRuntime
from repro.sim.simulator import Simulator

#: One virtual/real time unit per backend.  The real-clock units are large
#: enough that scheduling jitter (event-loop or cross-process) cannot
#: reorder arm/fire boundaries.
UNIT = {"sim": 1.0, "aio": 0.05, "proc": 0.1}

BACKENDS = [
    "sim",
    "aio",
    pytest.param(
        "proc",
        marks=pytest.mark.skipif(
            "fork" not in multiprocessing.get_all_start_methods(),
            reason="proc timer scenarios pass closures via fork",
        ),
    ),
]


class CpuSnapshot:
    """Picklable stand-in for a worker process's Cpu, same stats surface."""

    def __init__(self, cpu):
        self.crashed = cpu.crashed
        self.busy_time = cpu.busy_time
        self.items_processed = cpu.items_processed
        self.queue_depth = cpu.queue_depth

    def utilisation(self, elapsed=None):
        if not elapsed or elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed


def _snapshot_result(value):
    if isinstance(value, tuple):
        return tuple(_snapshot_result(item) for item in value)
    if hasattr(value, "busy_time"):
        return CpuSnapshot(value)
    return value


def _probe_worker(runtime, setup, unit):
    """Run one timer scenario inside a proc worker (fork: closures pass)."""
    from repro.runtime.proc import WorkerPlan

    state = {}

    def kickoff():
        state["result"] = setup(runtime, unit)

    return WorkerPlan(
        kickoff=kickoff, harvest=lambda: _snapshot_result(state.get("result"))
    )


def drive(backend, setup, duration_units):
    """Build a runtime, let ``setup`` arm timers, run for ``duration_units``.

    ``setup(runtime, unit)`` runs inside the backend's scheduling context
    (plain call for sim, kickoff inside the loop for aio/proc) and may
    return a state object that the test inspects afterwards.
    """
    unit = UNIT[backend]
    state = {}
    if backend == "sim":
        simulator = Simulator()
        runtime = SimRuntime(simulator)
        state["result"] = setup(runtime, unit)
        simulator.run(until=duration_units * unit)
    elif backend == "aio":
        runtime = AioRuntime()

        def kickoff():
            state["result"] = setup(runtime, unit)

        runtime.run(kickoff=kickoff, timeout=duration_units * unit)
    else:
        from repro.runtime.proc import ProcCluster, WorkerSpec

        cluster = ProcCluster(
            [
                WorkerSpec(
                    name="probe",
                    build=_probe_worker,
                    kwargs={"setup": setup, "unit": unit},
                )
            ],
            start_method="fork",
            stats_interval=30.0,
        )
        result = cluster.run(timeout=duration_units * unit, grace=20.0)
        assert result.met, (result.deaths, result.errors)
        state["result"] = result.harvests["probe"]
    return state["result"]


@pytest.mark.parametrize("backend", BACKENDS)
class TestTimerContract:
    def test_fires_once_after_delay(self, backend):
        def setup(runtime, unit):
            fired = []
            timer = runtime.timer(lambda: fired.append(runtime.now), label="t")
            timer.start(1 * unit)
            return fired

        fired = drive(backend, setup, 3)
        assert len(fired) == 1

    def test_stop_is_idempotent_and_safe_unarmed(self, backend):
        def setup(runtime, unit):
            fired = []
            timer = runtime.timer(lambda: fired.append(1), label="t")
            timer.stop()  # never started
            timer.stop()
            timer.start(1 * unit)
            timer.stop()
            timer.stop()  # stop twice after arming
            assert not timer.active
            return fired

        fired = drive(backend, setup, 3)
        assert fired == []

    def test_restart_supersedes_previous_arming(self, backend):
        def setup(runtime, unit):
            fired = []
            timer = runtime.timer(lambda: fired.append(1), label="t")
            timer.start(1 * unit)
            # Re-arm before expiry: only the later deadline may fire.
            runtime.call_later(0.5 * unit, lambda: timer.restart(2 * unit))
            return fired

        fired = drive(backend, setup, 5)
        assert len(fired) == 1

    def test_fire_disarms_before_callback_so_it_can_rearm(self, backend):
        def setup(runtime, unit):
            fired = []
            holder = {}

            def on_fire():
                fired.append(runtime.now)
                assert not holder["timer"].active  # disarmed before callback
                if len(fired) < 3:
                    holder["timer"].start(0.5 * unit)

            holder["timer"] = runtime.timer(on_fire, label="t")
            holder["timer"].start(0.5 * unit)
            return fired

        fired = drive(backend, setup, 5)
        assert len(fired) == 3

    def test_stop_after_fire_is_safe(self, backend):
        def setup(runtime, unit):
            fired = []
            timer = runtime.timer(lambda: fired.append(1), label="t")
            timer.start(0.5 * unit)
            # Stop long after the expiry already fired: must be a no-op.
            runtime.call_later(2 * unit, timer.stop)
            return fired

        fired = drive(backend, setup, 4)
        assert fired == [1]

    def test_timer_fires_after_cpu_crash(self, backend):
        """Timers belong to the runtime, not the CPU: a crashed node's
        timers still fire (protocol callbacks guard on the crash flag
        themselves, as they always did under the simulator)."""

        def setup(runtime, unit):
            cpu = runtime.create_cpu("n0")
            fired = []
            timer = runtime.timer(lambda: fired.append(cpu.crashed), label="t")
            timer.start(1 * unit)
            cpu.crash()
            return fired

        fired = drive(backend, setup, 3)
        assert fired == [True]


@pytest.mark.parametrize("backend", BACKENDS)
class TestCpuAccounting:
    """Both backends account CPU work into the same stats fields: the sim
    charges the modeled cost, the aio backend measures real elapsed time —
    either way ``busy_time``/``items_processed``/``utilisation`` exist and
    move when work runs."""

    def test_submitted_work_runs_and_is_accounted(self, backend):
        def setup(runtime, unit):
            cpu = runtime.create_cpu("n0")
            ran = []
            for index in range(3):
                cpu.submit(0.1 * unit, ran.append, (index,))
            return (cpu, ran)

        cpu, ran = drive(backend, setup, 3)
        assert ran == [0, 1, 2]
        assert cpu.items_processed == 3
        if backend == "sim":
            # Modeled cost is exact on the virtual clock.
            assert cpu.busy_time == pytest.approx(0.3 * UNIT["sim"])
        else:
            # Real elapsed time: positive, but no exactness to promise.
            assert cpu.busy_time >= 0.0
        assert cpu.utilisation(elapsed=10.0) >= 0.0

    def test_crashed_cpu_drops_work_silently(self, backend):
        def setup(runtime, unit):
            cpu = runtime.create_cpu("n0")
            ran = []
            cpu.crash()
            cpu.submit(0.1 * unit, ran.append, (1,))
            return (cpu, ran)

        cpu, ran = drive(backend, setup, 3)
        assert ran == []
        assert cpu.crashed


@pytest.mark.parametrize("backend", BACKENDS)
def test_call_later_returns_a_stoppable_handle(backend):
    def setup(runtime, unit):
        fired = []
        handle = runtime.call_later(1 * unit, lambda: fired.append(1))
        runtime.call_later(0.4 * unit, handle.stop)
        return fired

    assert drive(backend, setup, 3) == []
