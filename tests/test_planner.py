"""Unit tests for the public-cloud sizing planner (Section 4)."""

import pytest

from repro.planner import (
    CloudPlan,
    InfeasiblePlanError,
    hybrid_network_size,
    hybrid_quorum_size,
    plan_across_clouds,
    plan_with_explicit_failures,
    plan_with_failure_ratio,
    recommend_plan,
    rental_is_beneficial,
)
from repro.planner.multicloud import PublicCloudOffer


class TestNetworkAndQuorumSizes:
    def test_hybrid_network_size_formula(self):
        # N = 3m + 2c + 1 (Equation 1)
        assert hybrid_network_size(1, 1) == 6
        assert hybrid_network_size(2, 2) == 11
        assert hybrid_network_size(3, 1) == 12
        assert hybrid_network_size(1, 3) == 10

    def test_hybrid_quorum_size_formula(self):
        # Q = 2m + c + 1
        assert hybrid_quorum_size(1, 1) == 4
        assert hybrid_quorum_size(2, 2) == 7
        assert hybrid_quorum_size(0, 1) == 2

    def test_degenerate_cases_match_paxos_and_pbft(self):
        # m=0 reduces to Paxos sizes (2c+1 / c+1); c=0 reduces to PBFT (3m+1 / 2m+1).
        assert hybrid_network_size(0, 2) == 5
        assert hybrid_quorum_size(0, 2) == 3
        assert hybrid_network_size(2, 0) == 7
        assert hybrid_quorum_size(2, 0) == 5

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            hybrid_network_size(-1, 0)
        with pytest.raises(ValueError):
            hybrid_quorum_size(0, -1)


class TestRatioPlanning:
    def test_paper_worked_example(self):
        # S=2, c=1, alpha=0.3  =>  P = 10 (Section 4).
        plan = plan_with_failure_ratio(2, 1, 0.3)
        assert plan.public_nodes == 10
        assert plan.network_size == 12
        assert plan.satisfies_constraints

    def test_equation_three_with_crash_ratio(self):
        plan_without = plan_with_failure_ratio(2, 1, 0.2)
        plan_with = plan_with_failure_ratio(2, 1, 0.2, crash_ratio=0.1)
        # Accounting for crash-only failures in the public cloud never
        # reduces the requirement below the malicious-only estimate.
        assert plan_with.public_nodes >= plan_without.public_nodes

    def test_private_cloud_already_sufficient_rejected(self):
        with pytest.raises(InfeasiblePlanError):
            plan_with_failure_ratio(3, 1, 0.2)  # S >= 2c+1

    def test_useless_private_cloud_rejected(self):
        with pytest.raises(InfeasiblePlanError):
            plan_with_failure_ratio(1, 1, 0.2)  # S <= c

    def test_alpha_one_third_or_more_rejected(self):
        with pytest.raises(InfeasiblePlanError):
            plan_with_failure_ratio(2, 1, 1.0 / 3.0)
        with pytest.raises(InfeasiblePlanError):
            plan_with_failure_ratio(2, 1, 0.4)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            plan_with_failure_ratio(2, 1, -0.1)
        with pytest.raises(ValueError):
            plan_with_failure_ratio(2, 1, 1.0)

    def test_smaller_alpha_needs_fewer_nodes(self):
        cheap = plan_with_failure_ratio(2, 1, 0.05)
        pricey = plan_with_failure_ratio(2, 1, 0.3)
        assert cheap.public_nodes < pricey.public_nodes

    def test_plan_quorum_size_property(self):
        plan = plan_with_failure_ratio(2, 1, 0.3)
        assert plan.quorum_size == 2 * plan.byzantine_tolerance + plan.crash_tolerance + 1


class TestExplicitPlanning:
    def test_explicit_malicious_only(self):
        # P = (3M + 2c + 1) - S
        plan = plan_with_explicit_failures(2, 1, public_malicious=2)
        assert plan.public_nodes == (3 * 2 + 2 * 1 + 1) - 2
        assert plan.byzantine_tolerance == 2

    def test_explicit_with_crash_failures(self):
        plan = plan_with_explicit_failures(2, 1, public_malicious=1, public_crash=2)
        assert plan.public_nodes == (3 * 1 + 2 * 2 + 2 * 1 + 1) - 2

    def test_never_negative_rental(self):
        plan = plan_with_explicit_failures(10, 1, public_malicious=0)
        assert plan.public_nodes == 0

    def test_negative_failure_counts_rejected(self):
        with pytest.raises(ValueError):
            plan_with_explicit_failures(2, 1, public_malicious=-1)


class TestRecommendations:
    def test_rental_beneficial_window(self):
        # Beneficial only when c < S < 2c+1.
        assert not rental_is_beneficial(1, 1)     # S == c
        assert rental_is_beneficial(2, 1)         # c < S < 2c+1
        assert not rental_is_beneficial(3, 1)     # S == 2c+1
        assert rental_is_beneficial(3, 2)
        assert rental_is_beneficial(4, 2)
        assert not rental_is_beneficial(5, 2)

    def test_recommend_prefers_local_paxos_when_sufficient(self):
        plan = recommend_plan(5, 2, malicious_ratio=0.1)
        assert plan.public_nodes == 0
        assert "Paxos" in plan.rationale

    def test_recommend_uses_explicit_when_given(self):
        plan = recommend_plan(2, 1, public_malicious=1)
        assert plan.public_nodes == 4
        assert plan.byzantine_tolerance == 1

    def test_recommend_uses_ratio_when_given(self):
        plan = recommend_plan(2, 1, malicious_ratio=0.3)
        assert plan.public_nodes == 10

    def test_recommend_requires_some_information(self):
        with pytest.raises(ValueError):
            recommend_plan(2, 1)

    def test_plan_is_frozen_dataclass(self):
        plan = CloudPlan(2, 4, 1, 1)
        with pytest.raises(AttributeError):
            plan.public_nodes = 7


class TestMultiCloudPlanning:
    def test_single_offer_matches_ratio_model_scale(self):
        offers = [PublicCloudOffer("aws", malicious_ratio=0.3, price_per_node=1.0, max_nodes=16)]
        option = plan_across_clouds(2, 1, offers)
        total = 2 + option.total_public_nodes
        assert total >= 3 * option.byzantine_tolerance + 2 * 1 + 1

    def test_prefers_cheaper_provider(self):
        offers = [
            PublicCloudOffer("pricey", malicious_ratio=0.1, price_per_node=10.0, max_nodes=8),
            PublicCloudOffer("cheap", malicious_ratio=0.1, price_per_node=1.0, max_nodes=8),
        ]
        option = plan_across_clouds(2, 1, offers)
        assert "cheap" in option.allocation
        assert "pricey" not in option.allocation

    def test_infeasible_when_every_provider_too_faulty(self):
        offers = [PublicCloudOffer("bad", malicious_ratio=0.9, max_nodes=3)]
        # With a tiny node cap and a very high failure ratio no allocation works.
        with pytest.raises(InfeasiblePlanError):
            plan_across_clouds(0, 2, offers)

    def test_requires_at_least_one_offer(self):
        with pytest.raises(ValueError):
            plan_across_clouds(2, 1, [])

    def test_allocation_excludes_zero_count_providers(self):
        offers = [
            PublicCloudOffer("a", malicious_ratio=0.1, price_per_node=1.0, max_nodes=8),
            PublicCloudOffer("b", malicious_ratio=0.1, price_per_node=2.0, max_nodes=8),
        ]
        option = plan_across_clouds(2, 1, offers)
        assert all(count > 0 for count in option.allocation.values())
