"""Unit tests for the scenario subsystem itself.

The full matrix lives in ``test_scenarios_matrix.py``; these tests pin
down the engine's pieces: role resolution, event application, the
invariant checkers' ability to actually *detect* violations (a checker
that never fires is worse than none), expectations, and reporting.
"""

import pytest

from repro.analysis import format_scenario_results
from repro.cluster import build_seemore
from repro.core import Mode
from repro.scenarios import (
    SCENARIOS,
    Byzantine,
    CheckpointAgreement,
    ClearLinkDegradation,
    ClientSurge,
    CommittedPrefixAgreement,
    Crash,
    ExactlyOnceExecution,
    HealPartition,
    LinkDegradation,
    ModeSwitch,
    NoForgedReplies,
    Partition,
    Scenario,
    run_scenario,
    resolve_target,
    scenario_by_name,
)
from repro.scenarios.engine import ModeIs, ProgressAfter
from repro.smr.ledger import LedgerEntry
from repro.smr.executor import ExecutionResult
from repro.workload import microbenchmark


def small_deployment(mode=Mode.LION, **kwargs):
    return build_seemore(
        crash_tolerance=1,
        byzantine_tolerance=1,
        mode=mode,
        workload=microbenchmark("0/0"),
        num_clients=kwargs.pop("num_clients", 1),
        seed=kwargs.pop("seed", 3),
        **kwargs,
    )


class TestLibrary:
    def test_registry_names_match_scenarios(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name

    def test_lookup_unknown_scenario_lists_options(self):
        with pytest.raises(KeyError, match="primary-crash-mid-batch"):
            scenario_by_name("not-a-scenario")

    def test_every_scenario_has_events_and_expectations(self):
        for scenario in SCENARIOS.values():
            assert scenario.events, scenario.name
            assert scenario.expectations, scenario.name
            last_event = max(event.at for event in scenario.events)
            assert last_event < scenario.duration, scenario.name
            for expectation in scenario.expectations:
                for at in expectation.probe_times():
                    assert at < scenario.duration, (scenario.name, expectation)


class TestTargetResolution:
    def test_primary_role(self):
        deployment = small_deployment()
        config = deployment.extras["config"]
        assert resolve_target(deployment, "primary") == config.primary_of_view(0, Mode.LION)

    def test_cloud_index_roles(self):
        deployment = small_deployment()
        config = deployment.extras["config"]
        assert resolve_target(deployment, "private:1") == config.private_replicas[1]
        assert resolve_target(deployment, "public:2") == config.public_replicas[2]

    def test_public_primary_prefers_untrusted_primary(self):
        peacock = small_deployment(mode=Mode.PEACOCK)
        config = peacock.extras["config"]
        assert resolve_target(peacock, "public-primary") == config.primary_of_view(
            0, Mode.PEACOCK
        )
        lion = small_deployment(mode=Mode.LION)
        resolved = resolve_target(lion, "public-primary")
        assert resolved in lion.extras["config"].public_replicas

    def test_public_backup_is_never_the_primary(self):
        deployment = small_deployment(mode=Mode.PEACOCK)
        config = deployment.extras["config"]
        primary = config.primary_of_view(0, Mode.PEACOCK)
        assert resolve_target(deployment, "public-backup") != primary

    def test_unknown_target_raises(self):
        with pytest.raises(KeyError):
            resolve_target(small_deployment(), "ghost")


class TestEvents:
    def test_partition_and_heal(self):
        deployment = small_deployment()
        config = deployment.extras["config"]
        Partition(at=0.0, groups=(("private",), ("public",))).apply(deployment)
        conditions = deployment.network.conditions
        assert conditions._is_partitioned(
            config.private_replicas[0], config.public_replicas[0]
        )
        HealPartition(at=0.0).apply(deployment)
        assert not conditions._is_partitioned(
            config.private_replicas[0], config.public_replicas[0]
        )

    def test_link_degradation_targets_cross_cloud_only(self):
        deployment = small_deployment()
        config = deployment.extras["config"]
        LinkDegradation(at=0.0, delay=0.005, link_class="cross").apply(deployment)
        conditions = deployment.network.conditions
        private, public = config.private_replicas[0], config.public_replicas[0]
        assert conditions.extra_delay(private, public) == 0.005
        assert conditions.extra_delay(private, config.private_replicas[1]) == 0.0
        ClearLinkDegradation(at=0.0).apply(deployment)
        assert conditions.extra_delay(private, public) == 0.0

    def test_client_surge_spawns_and_starts(self):
        deployment = small_deployment()
        before = len(deployment.clients)
        ClientSurge(at=0.0, count=3).apply(deployment)
        assert len(deployment.clients) == before + 3
        # Started clients have a request outstanding immediately.
        assert all(client.outstanding_count > 0 for client in deployment.clients[-3:])

    def test_crash_event_resolves_primary_at_fire_time(self):
        deployment = small_deployment()
        config = deployment.extras["config"]
        Crash(at=0.0, target="primary").apply(deployment)
        assert deployment.replicas[config.primary_of_view(0, Mode.LION)].crashed

    def test_byzantine_event_respects_hybrid_model(self):
        deployment = small_deployment()
        with pytest.raises(ValueError):
            Byzantine(at=0.0, target="private:0", strategy="silent").apply(deployment)

    def test_mode_switch_next_cycles(self):
        deployment = small_deployment(mode=Mode.PEACOCK)
        ModeSwitch(at=0.0, new_mode="next").apply(deployment)
        deployment.simulator.run(until=0.5)
        modes = {replica.mode for replica in deployment.correct_replicas()}
        assert modes == {Mode.LION}


class TestInvariantCheckersDetect:
    """Each checker must actually fire when its invariant is broken."""

    def test_committed_prefix_agreement_detects_fork(self):
        deployment = small_deployment()
        first, second = deployment.correct_replicas()[:2]
        first.ledger.record(
            LedgerEntry(sequence=1, digest="aaaa", view=0, client_id="c", timestamp=1)
        )
        second.ledger.record(
            LedgerEntry(sequence=1, digest="bbbb", view=0, client_id="c", timestamp=1)
        )
        violations = CommittedPrefixAgreement().check(deployment)
        assert violations and "sequence 1" in violations[0]

    def test_committed_prefix_agreement_reports_one_fork_once(self):
        deployment = small_deployment()
        first, second = deployment.correct_replicas()[:2]
        first.ledger.record(
            LedgerEntry(sequence=1, digest="aaaa", view=0, client_id="c", timestamp=1)
        )
        second.ledger.record(
            LedgerEntry(sequence=1, digest="bbbb", view=0, client_id="c", timestamp=1)
        )
        checker = CommittedPrefixAgreement()
        checker.check(deployment)
        # The final pairwise pass phrases the same conflict with the replicas
        # in sorted order; it must not be reported a second time.
        final = checker.finalize(deployment)
        assert len([v for v in final if "sequence 1" in v]) == 1

    def test_no_forged_replies_detects_unexecuted_acceptance(self):
        deployment = small_deployment()
        checker = NoForgedReplies()
        checker.attach(deployment)
        checker._accepted[("client-0", 1)] = {"ok": False, "value": "forged"}
        violations = checker.finalize(deployment)
        assert violations and "ever executed" in violations[0]

    def test_no_forged_replies_detects_result_mismatch(self):
        deployment = small_deployment()
        checker = NoForgedReplies()
        checker.attach(deployment)
        replica = deployment.correct_replicas()[0]
        replica.executor.commit(1, "client-0", 1, microbenchmark("0/0").operation_factory()(1))
        checker._accepted[("client-0", 1)] = {"ok": False, "value": "forged"}
        violations = checker.finalize(deployment)
        assert violations and "forged" in violations[0]

    def test_exactly_once_detects_double_execution(self):
        deployment = small_deployment()
        checker = ExactlyOnceExecution()
        replica = deployment.correct_replicas()[0]
        replica.executor.executed.extend(
            [
                ExecutionResult(sequence=1, client_id="c", timestamp=1, result={"v": 1}),
                ExecutionResult(sequence=2, client_id="c", timestamp=1, result={"v": 2}),
            ]
        )
        violations = checker.check(deployment)
        assert violations and "twice" in violations[0]

    def test_exactly_once_detects_cross_replica_disagreement(self):
        deployment = small_deployment()
        checker = ExactlyOnceExecution()
        first, second = deployment.correct_replicas()[:2]
        first.executor.executed.append(
            ExecutionResult(sequence=1, client_id="c", timestamp=1, result={"v": 1})
        )
        second.executor.executed.append(
            ExecutionResult(sequence=1, client_id="c", timestamp=1, result={"v": 2})
        )
        violations = checker.check(deployment)
        assert violations and "disagree" in violations[0]

    def test_checkpoint_agreement_detects_divergent_digests(self):
        deployment = small_deployment()
        checker = CheckpointAgreement()
        first, second = deployment.correct_replicas()[:2]
        first.checkpoints.mark_stable(128, "digest-a")
        second.checkpoints.mark_stable(128, "digest-b")
        violations = checker.check(deployment)
        assert violations and "checkpoint at sequence 128" in violations[0]

    def test_clean_deployment_has_no_violations(self):
        deployment = small_deployment()
        for checker in (
            CommittedPrefixAgreement(),
            ExactlyOnceExecution(),
            CheckpointAgreement(),
        ):
            assert checker.check(deployment) == []


class TestEngine:
    def test_unreachable_event_or_probe_is_rejected(self):
        beyond_end = Scenario(
            name="event-after-end",
            description="event scheduled past the run",
            events=(Crash(at=1.0, target="primary"),),
            duration=0.5,
        )
        with pytest.raises(ValueError, match="never fires"):
            run_scenario(beyond_end, Mode.LION)
        unreachable_probe = Scenario(
            name="probe-after-end",
            description="probe scheduled past the run",
            events=(Crash(at=0.1, target="primary"),),
            expectations=(ProgressAfter(at=2.0),),
            duration=0.5,
        )
        with pytest.raises(ValueError, match="never captured"):
            run_scenario(unreachable_probe, Mode.LION)

    def test_state_transfers_counted_for_recovered_replicas(self):
        result = run_scenario(SCENARIOS["recover-via-state-transfer"], Mode.LION)
        result.assert_ok()
        assert result.state_transfers >= 1, (
            "the report must show the recovered replica's state transfer even "
            "though it stays in the conservative faulty set"
        )

    def test_failing_expectation_is_reported_not_raised(self):
        impossible = Scenario(
            name="impossible-progress",
            description="nothing can complete this much this fast",
            events=(Crash(at=0.05, target="primary"),),
            expectations=(ProgressAfter(at=0.06, min_completed=10**9),),
            duration=0.2,
            settle=0.05,
            min_completed=1,
        )
        result = run_scenario(impossible, Mode.LION)
        assert not result.ok
        assert result.expectation_failures
        with pytest.raises(AssertionError, match="impossible-progress"):
            result.assert_ok()

    def test_events_are_recorded_with_fire_times(self):
        scenario = SCENARIOS["crash-recover-backup"]
        result = run_scenario(scenario, Mode.LION)
        labels = [label for _, label in result.events_applied]
        assert labels == ["crash(private:1)", "recover(private:1)"]
        times = [at for at, _ in result.events_applied]
        assert times == sorted(times)

    def test_mode_is_expectation_relative_to_initial_mode(self):
        scenario = Scenario(
            name="switch-once",
            description="one mode switch",
            events=(ModeSwitch(at=0.1, new_mode="next"),),
            expectations=(ModeIs(steps=1), ProgressAfter(at=0.3, min_completed=1)),
            duration=0.5,
        )
        result = run_scenario(scenario, Mode.DOG)
        result.assert_ok()
        assert result.final_modes == ("PEACOCK",)

    def test_matrix_rejects_shared_checker_instances(self):
        from repro.scenarios import default_checkers, run_scenario_matrix

        with pytest.raises(TypeError, match="checker_factory"):
            run_scenario_matrix([SCENARIOS["silent-byzantine-proxy"]],
                                checkers=default_checkers())

    def test_report_formatting(self):
        result = run_scenario(SCENARIOS["silent-byzantine-proxy"], Mode.LION)
        text = format_scenario_results([result])
        assert "silent-byzantine-proxy" in text
        assert "verdict" in text
        assert "1/1 scenario runs passed" in text
