"""Differential test suite for the binary wire codec (:mod:`repro.wire`).

The codec replaced per-send JSON canonical-form construction for the hot
message types, and the change is only safe because the properties pinned
here hold:

* **round trip** — ``decode(encode(message))`` reproduces the message for
  every hot type (field-level identity for fully-carried types, frame-level
  identity for types that ship digests instead of values);
* **differential digest equivalence** — the frame digest distinguishes any
  two messages the legacy JSON canonical form distinguished (the frame is
  at least as fine-grained as ``signing_content()``; for digest-carrying
  types it is exactly as fine-grained);
* **rejection** — truncated, garbled, trailing-padded, and unknown-tag
  frames raise :class:`WireDecodeError`, never a stray exception and never
  a silently-wrong message.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.messages import (
    Accept,
    Checkpoint,
    Commit,
    Inform,
    PrePrepare,
    Prepare,
    ProxyPrepare,
)
from repro.crypto.digest import digest_bytes, digest_of
from repro.smr.messages import Batch, Reply, Request
from repro.smr.state_machine import Operation
from repro.wire.codec import OpaqueResult, decode, encode, wire_slice_of
from repro.wire.primitives import WireDecodeError

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

I64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
SMALL_INT = st.integers(min_value=0, max_value=2**31)
IDENTIFIER = st.from_regex(r"[a-z][a-z0-9-]{0,15}", fullmatch=True)
TEXT = st.text(max_size=32)

# Digest fields accept both the canonical 64-hex spelling (packed to raw
# bytes on the wire) and arbitrary synthetic strings (length-prefixed
# fallback), because attack helpers and tests inject non-hex digests.
HEX_DIGEST = st.from_regex(r"[0-9a-f]{64}", fullmatch=True)
DIGEST = st.one_of(HEX_DIGEST, TEXT, st.just("AB" * 32))

# Operation arguments: the typed value encoding's full supported domain.
VALUES = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),
        st.floats(allow_nan=False),
        TEXT,
        st.binary(max_size=24),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
    ),
    max_leaves=8,
)

OPERATIONS = st.builds(
    Operation,
    kind=IDENTIFIER,
    args=st.lists(VALUES, max_size=4).map(tuple),
    payload=TEXT,
)

REQUESTS = st.builds(Request, operation=OPERATIONS, timestamp=I64, client_id=IDENTIFIER)

BATCHES = st.builds(Batch, requests=st.lists(REQUESTS, min_size=1, max_size=4))

REPLIES = st.builds(
    Reply,
    mode=I64,
    view=I64,
    timestamp=I64,
    client_id=IDENTIFIER,
    replica_id=IDENTIFIER,
    result=st.one_of(
        st.builds(OpaqueResult, result_digest=DIGEST),
        st.dictionaries(IDENTIFIER, st.one_of(st.integers(), TEXT, st.booleans()), max_size=3),
    ),
)

PREPARES = st.builds(
    Prepare, view=I64, sequence=I64, digest=DIGEST, request=st.none(), mode=I64
)
PREPREPARES = st.builds(
    PrePrepare, view=I64, sequence=I64, digest=DIGEST, request=st.none(), mode=I64
)
ACCEPTS = st.builds(
    Accept, view=I64, sequence=I64, digest=DIGEST, replica_id=IDENTIFIER, mode=I64
)
COMMITS = st.builds(
    Commit, view=I64, sequence=I64, digest=DIGEST, replica_id=IDENTIFIER, mode=I64
)
PROXY_PREPARES = st.builds(
    ProxyPrepare, view=I64, sequence=I64, digest=DIGEST, replica_id=IDENTIFIER, mode=I64
)
INFORMS = st.builds(
    Inform, view=I64, sequence=I64, digest=DIGEST, replica_id=IDENTIFIER, mode=I64
)
CHECKPOINTS = st.builds(
    Checkpoint, sequence=I64, state_digest=DIGEST, replica_id=IDENTIFIER, mode=I64
)

#: Every hot type: (strategy, fully_carried) — fully-carried types round
#: trip to field equality; the rest (Reply ships only the result digest)
#: round trip at the frame level.
HOT_MESSAGES = st.one_of(
    REQUESTS,
    BATCHES,
    REPLIES,
    PREPARES,
    PREPREPARES,
    ACCEPTS,
    COMMITS,
    PROXY_PREPARES,
    INFORMS,
    CHECKPOINTS,
)


def legacy_canonical_bytes(message) -> bytes:
    """The pre-codec canonical form: sorted-key JSON of signing_content."""

    def fallback(value):
        to_wire = getattr(value, "to_wire", None)
        if callable(to_wire):
            return to_wire()
        return repr(value)

    return json.dumps(message.signing_content(), sort_keys=True, default=fallback).encode(
        "utf-8"
    )


# ---------------------------------------------------------------------------
# round-trip properties
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @given(request=REQUESTS)
    def test_request_round_trips_to_field_identity(self, request):
        twin = decode(encode(request))
        assert isinstance(twin, Request)
        assert twin.operation == request.operation
        assert type(twin.operation.args) is tuple
        assert twin.timestamp == request.timestamp
        assert twin.client_id == request.client_id

    @given(batch=BATCHES)
    def test_batch_round_trips_every_inner_request(self, batch):
        twin = decode(encode(batch))
        assert isinstance(twin, Batch)
        assert len(twin.requests) == len(batch.requests)
        for ours, theirs in zip(batch.requests, twin.requests):
            assert theirs.operation == ours.operation
            assert theirs.timestamp == ours.timestamp
            assert theirs.client_id == ours.client_id

    @given(reply=REPLIES)
    def test_reply_round_trips_at_the_frame_level(self, reply):
        """A reply ships its result as a digest; re-encoding reproduces it."""
        frame = encode(reply)
        twin = decode(frame)
        assert isinstance(twin, Reply)
        assert (twin.mode, twin.view, twin.timestamp) == (
            reply.mode,
            reply.view,
            reply.timestamp,
        )
        assert (twin.client_id, twin.replica_id) == (reply.client_id, reply.replica_id)
        assert isinstance(twin.result, OpaqueResult)
        assert twin.result_digest() == reply.result_digest()
        assert encode(twin) == frame

    @given(message=st.one_of(PREPARES, PREPREPARES))
    def test_ordering_messages_round_trip(self, message):
        twin = decode(encode(message))
        assert type(twin) is type(message)
        assert (twin.view, twin.sequence, twin.mode) == (
            message.view,
            message.sequence,
            message.mode,
        )
        assert twin.digest == message.digest
        # The piggybacked payload is transport, not signed content.
        assert twin.request is None

    @given(message=st.one_of(ACCEPTS, COMMITS, PROXY_PREPARES, INFORMS))
    def test_attributed_votes_round_trip(self, message):
        twin = decode(encode(message))
        assert type(twin) is type(message)
        assert (twin.view, twin.sequence, twin.mode) == (
            message.view,
            message.sequence,
            message.mode,
        )
        assert twin.digest == message.digest
        assert twin.replica_id == message.replica_id

    @given(checkpoint=CHECKPOINTS)
    def test_checkpoints_round_trip(self, checkpoint):
        twin = decode(encode(checkpoint))
        assert type(twin) is Checkpoint
        assert (twin.sequence, twin.mode) == (checkpoint.sequence, checkpoint.mode)
        assert twin.state_digest == checkpoint.state_digest
        assert twin.replica_id == checkpoint.replica_id

    @given(message=HOT_MESSAGES)
    def test_reencoding_a_decoded_message_is_byte_identical(self, message):
        """encode ∘ decode is the identity on every frame encode produces."""
        frame = encode(message)
        assert encode(decode(frame)) == frame

    @given(message=HOT_MESSAGES)
    def test_decoded_messages_carry_no_signature(self, message):
        assert decode(encode(message)).signature is None


# ---------------------------------------------------------------------------
# differential digest equivalence vs the legacy canonical form
# ---------------------------------------------------------------------------


class TestDifferentialDigests:
    @given(message=HOT_MESSAGES)
    def test_digest_of_is_the_frame_digest(self, message):
        """The cached digest layer hashes exactly the wire slice."""
        assert digest_of(message) == digest_bytes(wire_slice_of(message))
        assert wire_slice_of(message) == message.signing_bytes()

    @given(message=HOT_MESSAGES)
    def test_decoding_preserves_the_digest(self, message):
        """A decoded twin digests identically to the source message."""
        assert digest_of(decode(encode(message))) == digest_of(message)

    @given(first=HOT_MESSAGES, second=HOT_MESSAGES)
    def test_frames_distinguish_everything_the_legacy_form_did(self, first, second):
        """Any two messages with distinct legacy canonical forms have
        distinct frames — the codec never *merges* messages the JSON form
        told apart, so no digest-equality argument is weakened."""
        if legacy_canonical_bytes(first) != legacy_canonical_bytes(second):
            assert encode(first) != encode(second)

    @given(
        first=st.one_of(REPLIES, PREPARES, ACCEPTS, COMMITS, CHECKPOINTS),
        second=st.one_of(REPLIES, PREPARES, ACCEPTS, COMMITS, CHECKPOINTS),
    )
    def test_digest_carrying_types_match_the_legacy_equality_exactly(self, first, second):
        """For types whose signed fields are all carried (votes, replies,
        checkpoints) frame equality *iff* legacy-canonical equality."""
        legacy_equal = legacy_canonical_bytes(first) == legacy_canonical_bytes(second)
        assert (encode(first) == encode(second)) == legacy_equal

    @given(request=REQUESTS, payload=TEXT)
    def test_request_frames_are_strictly_finer_than_the_legacy_form(self, request, payload):
        """The legacy request form covered only the payload *length*; the
        frame covers its content, distinguishing strictly more."""
        if payload == request.operation.payload:
            return
        sibling = Request(
            operation=Operation(
                kind=request.operation.kind,
                args=request.operation.args,
                payload=payload,
            ),
            timestamp=request.timestamp,
            client_id=request.client_id,
        )
        assert encode(sibling) != encode(request)

    def test_unsupported_argument_types_digest_but_refuse_to_decode(self):
        """The opaque repr capsule keeps digests faithful for exotic args
        while refusing to fabricate a decoded value."""

        class Exotic:
            def __repr__(self):
                return "Exotic()"

        request = Request(
            operation=Operation("op", (Exotic(),)), timestamp=1, client_id="c"
        )
        frame = encode(request)
        assert digest_of(request) == digest_bytes(frame)
        with pytest.raises(WireDecodeError):
            decode(frame)


# ---------------------------------------------------------------------------
# rejection of truncated / garbled frames
# ---------------------------------------------------------------------------


class TestRejection:
    @given(message=HOT_MESSAGES, data=st.data())
    @settings(max_examples=200)
    def test_any_strict_prefix_is_rejected(self, message, data):
        frame = encode(message)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(WireDecodeError):
            decode(frame[:cut])

    @given(message=HOT_MESSAGES, suffix=st.binary(min_size=1, max_size=8))
    def test_trailing_bytes_are_rejected(self, message, suffix):
        with pytest.raises(WireDecodeError):
            decode(encode(message) + suffix)

    @given(body=st.binary(max_size=64), tag=st.integers(min_value=0, max_value=255))
    def test_unknown_tags_are_rejected(self, body, tag):
        if tag in (0x01, 0x02, 0x03, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16):
            return
        with pytest.raises(WireDecodeError):
            decode(bytes([tag]) + body)

    @given(data=st.binary(max_size=256))
    @settings(max_examples=300)
    def test_arbitrary_bytes_never_raise_anything_but_wire_decode_error(self, data):
        """Hostile input is rejected cleanly: no struct errors, no unicode
        errors, no allocation bombs from huge length prefixes."""
        try:
            message = decode(data)
        except WireDecodeError:
            return
        assert type(message) in (
            Request,
            Batch,
            Reply,
            Prepare,
            PrePrepare,
            Accept,
            Commit,
            ProxyPrepare,
            Inform,
            Checkpoint,
        )

    @given(message=HOT_MESSAGES, data=st.data())
    @settings(max_examples=200)
    def test_single_byte_corruption_never_yields_the_same_digest(self, message, data):
        """Flipping any byte of a frame either fails to decode or decodes
        to a message whose re-encoded frame differs — corruption can never
        masquerade as the original under the frame digest."""
        frame = bytearray(encode(message))
        index = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        frame[index] ^= flip
        mutated = bytes(frame)
        try:
            twin = decode(mutated)
        except WireDecodeError:
            return
        assert digest_bytes(encode(twin)) != digest_bytes(encode(message))

    def test_empty_frame_is_rejected(self):
        with pytest.raises(WireDecodeError):
            decode(b"")

    def test_non_bytes_frames_are_rejected(self):
        with pytest.raises(WireDecodeError):
            decode("not-bytes")

    def test_garbled_utf8_string_field_is_rejected(self):
        frame = bytearray(encode(Request(Operation("op"), timestamp=1, client_id="ab")))
        # client string starts after the 9-byte request head + 4-byte length.
        frame[13] = 0xFF
        with pytest.raises(WireDecodeError):
            decode(bytes(frame))

    def test_garbled_digest_flag_is_rejected(self):
        checkpoint = Checkpoint(sequence=1, state_digest="ab" * 32, replica_id="r", mode=0)
        frame = bytearray(encode(checkpoint))
        # digest flag byte sits right after the 17-byte checkpoint head.
        assert frame[17] in (0, 1)
        frame[17] = 0x7F
        with pytest.raises(WireDecodeError):
            decode(bytes(frame))

    def test_batch_embedding_a_non_request_frame_is_rejected(self):
        inner = encode(Checkpoint(sequence=1, state_digest="d", replica_id="r", mode=0))
        from repro.wire.primitives import BATCH_HEAD, TAG_BATCH, _U32

        frame = BATCH_HEAD.pack(TAG_BATCH, 1) + _U32.pack(len(inner)) + inner
        with pytest.raises(WireDecodeError):
            decode(frame)

    def test_empty_batch_frame_is_rejected(self):
        from repro.wire.primitives import BATCH_HEAD, TAG_BATCH

        with pytest.raises(WireDecodeError):
            decode(BATCH_HEAD.pack(TAG_BATCH, 0))

    def test_cold_types_have_no_wire_frame(self):
        from repro.core.messages import ModeChange

        cold = ModeChange(new_view=1, new_mode=2, replica_id="r")
        with pytest.raises(TypeError):
            wire_slice_of(cold)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
