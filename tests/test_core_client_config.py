"""Unit tests for the per-mode SeeMoRe client configuration (Section 5 client rules)."""

import pytest

from repro.core import Mode, SeeMoReConfig, client_config_for_mode


@pytest.fixture
def config():
    return SeeMoReConfig.build(crash_tolerance=1, byzantine_tolerance=2)


class TestLionClientConfig:
    def test_sends_to_trusted_primary(self, config):
        client_config = client_config_for_mode(config, Mode.LION)
        targets = client_config.request_targets(0, int(Mode.LION))
        assert targets == [config.primary_of_view(0, Mode.LION)]
        assert config.is_trusted(targets[0])

    def test_single_trusted_reply_suffices(self, config):
        client_config = client_config_for_mode(config, Mode.LION)
        assert client_config.replies_needed == 1
        assert client_config.trusted_replicas == frozenset(config.private_replicas)

    def test_retransmission_goes_to_everyone_and_needs_m_plus_1(self, config):
        client_config = client_config_for_mode(config, Mode.LION)
        assert set(client_config.targets_for_retransmit(0, int(Mode.LION))) == set(
            config.all_replicas
        )
        assert client_config.replies_needed_after_retransmit == config.byzantine_tolerance + 1


class TestDogClientConfig:
    def test_needs_2m_plus_1_matching_proxy_replies(self, config):
        client_config = client_config_for_mode(config, Mode.DOG)
        assert client_config.replies_needed == 2 * config.byzantine_tolerance + 1
        assert client_config.trusted_replicas == frozenset()

    def test_retransmission_targets_are_the_proxies(self, config):
        client_config = client_config_for_mode(config, Mode.DOG)
        targets = client_config.targets_for_retransmit(0, int(Mode.DOG))
        assert set(targets) == set(config.proxies_of_view(0, Mode.DOG))


class TestPeacockClientConfig:
    def test_sends_to_untrusted_primary(self, config):
        client_config = client_config_for_mode(config, Mode.PEACOCK)
        targets = client_config.request_targets(0, int(Mode.PEACOCK))
        assert targets == [config.primary_of_view(0, Mode.PEACOCK)]
        assert not config.is_trusted(targets[0])

    def test_needs_m_plus_1_matching_replies(self, config):
        client_config = client_config_for_mode(config, Mode.PEACOCK)
        assert client_config.replies_needed == config.byzantine_tolerance + 1


class TestModeAwareness:
    def test_reply_quorum_follows_reported_mode(self, config):
        # A client built for the Lion mode must apply the Dog quorum once the
        # service reports it has switched to the Dog mode.
        client_config = client_config_for_mode(config, Mode.LION)
        assert client_config.replies_for_mode(int(Mode.LION)) == 1
        assert client_config.replies_for_mode(int(Mode.DOG)) == 2 * config.byzantine_tolerance + 1
        assert client_config.replies_for_mode(int(Mode.PEACOCK)) == config.byzantine_tolerance + 1

    def test_trusted_set_follows_reported_mode(self, config):
        client_config = client_config_for_mode(config, Mode.LION)
        assert client_config.trusted_for_mode(int(Mode.LION)) == frozenset(config.private_replicas)
        assert client_config.trusted_for_mode(int(Mode.DOG)) == frozenset()

    def test_targets_follow_reported_mode(self, config):
        client_config = client_config_for_mode(config, Mode.LION)
        lion_target = client_config.request_targets(0, int(Mode.LION))[0]
        peacock_target = client_config.request_targets(0, int(Mode.PEACOCK))[0]
        assert config.is_trusted(lion_target)
        assert not config.is_trusted(peacock_target)

    def test_unknown_mode_id_falls_back_to_initial_mode(self, config):
        client_config = client_config_for_mode(config, Mode.LION)
        targets = client_config.request_targets(0, 99)
        assert targets == [config.primary_of_view(0, Mode.LION)]
