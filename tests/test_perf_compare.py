"""Regression tests for the perf-baseline comparison gate.

``benchmarks/perf/compare.py`` decides whether a perf run regressed, so its
own edge cases (mismatched case sets, zero events/sec on one side, missing
calibration) must be pinned: a gate that crashes or silently reports an
infinite/zero geomean is worse than no gate.
"""

import json
import math
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks" / "perf"))

import compare  # noqa: E402


def _document(cases, calibration=None):
    document = {"schema_version": 1, "cases": [
        {"name": name, "events_per_second": value} for name, value in cases.items()
    ]}
    if calibration is not None:
        document["host"] = {"calibration_ops_per_second": calibration}
    return document


def _write(tmp_path, filename, document):
    path = tmp_path / filename
    path.write_text(json.dumps(document))
    return path


def _run(tmp_path, current, baseline, max_regression=0.25, **kwargs):
    current_path = _write(tmp_path, "current.json", current)
    baseline_path = _write(tmp_path, "baseline.json", baseline)
    return compare.compare(current_path, baseline_path, max_regression, **kwargs)


class TestIntersection:
    def test_identical_documents_pass(self, tmp_path, capsys):
        document = _document({"a": 100.0, "b": 200.0})
        assert _run(tmp_path, document, document) == 0
        assert "geomean ratio: 1.000" in capsys.readouterr().out

    def test_extra_current_cases_do_not_move_the_geomean(self, tmp_path, capsys):
        """Cases absent from the baseline are warned about, never gated on."""
        baseline = _document({"a": 100.0, "b": 100.0})
        current = _document({"a": 100.0, "b": 100.0, "new-case": 10_000_000.0})
        assert _run(tmp_path, current, baseline) == 0
        out = capsys.readouterr().out
        assert "missing from the baseline" in out
        assert "new-case" in out
        assert "geomean ratio: 1.000" in out

    def test_extra_baseline_cases_are_ignored(self, tmp_path, capsys):
        baseline = _document({"a": 100.0, "retired-case": 1.0})
        current = _document({"a": 100.0})
        assert _run(tmp_path, current, baseline) == 0
        out = capsys.readouterr().out
        assert "retired-case" in out
        assert "geomean ratio: 1.000" in out

    def test_disjoint_case_sets_error(self, tmp_path):
        assert _run(tmp_path, _document({"a": 1.0}), _document({"b": 1.0})) == 2


class TestDegenerateValues:
    def test_zero_baseline_case_does_not_inflate_the_geomean(self, tmp_path, capsys):
        """A then==0 case used to contribute ratio=inf, masking regressions."""
        baseline = _document({"broken": 0.0, "a": 100.0, "b": 100.0})
        current = _document({"broken": 50.0, "a": 10.0, "b": 10.0})  # 10x regression
        assert _run(tmp_path, current, baseline) == 1
        out = capsys.readouterr().out
        assert "excluded from the geomean: broken" in out
        assert "inf" not in out

    def test_zero_current_case_does_not_crash_or_zero_the_geomean(self, tmp_path, capsys):
        baseline = _document({"broken": 100.0, "a": 100.0})
        current = _document({"broken": 0.0, "a": 100.0})
        assert _run(tmp_path, current, baseline) == 0
        out = capsys.readouterr().out
        assert "excluded from the geomean: broken" in out
        assert "geomean ratio: 1.000" in out

    def test_all_cases_degenerate_is_an_error(self, tmp_path):
        assert _run(tmp_path, _document({"a": 0.0}), _document({"a": 100.0})) == 2

    def test_missing_events_per_second_is_treated_as_degenerate(self, tmp_path):
        baseline = _document({"a": 100.0, "b": 100.0})
        current = _document({"a": 100.0, "b": 100.0})
        current["cases"][1] = {"name": "b"}  # no events_per_second key
        assert _run(tmp_path, current, baseline) == 0


class TestGate:
    def test_regression_beyond_threshold_fails(self, tmp_path):
        baseline = _document({"a": 100.0, "b": 100.0})
        current = _document({"a": 60.0, "b": 60.0})
        assert _run(tmp_path, current, baseline, max_regression=0.25) == 1

    def test_regression_within_threshold_passes(self, tmp_path):
        baseline = _document({"a": 100.0, "b": 100.0})
        current = _document({"a": 90.0, "b": 90.0})
        assert _run(tmp_path, current, baseline, max_regression=0.25) == 0

    def test_geomean_is_robust_to_one_noisy_case(self, tmp_path):
        """One slow case inside an otherwise-flat run stays under the gate."""
        baseline = _document({f"c{i}": 100.0 for i in range(10)})
        current_cases = {f"c{i}": 100.0 for i in range(10)}
        current_cases["c0"] = 40.0
        geomean = math.exp(sum(math.log(v / 100.0) for v in current_cases.values()) / 10)
        assert geomean > 0.75
        assert _run(tmp_path, _document(current_cases), baseline) == 0


class TestCalibration:
    def test_calibration_normalizes_machine_speed(self, tmp_path, capsys):
        """Half-speed machine at half the events/sec is not a regression."""
        baseline = _document({"a": 100.0}, calibration=1_000_000.0)
        current = _document({"a": 50.0}, calibration=500_000.0)
        assert _run(tmp_path, current, baseline) == 0
        assert "geomean ratio: 1.000" in capsys.readouterr().out

    def test_no_calibration_flag_compares_raw(self, tmp_path):
        baseline = _document({"a": 100.0}, calibration=1_000_000.0)
        current = _document({"a": 50.0}, calibration=500_000.0)
        assert _run(tmp_path, current, baseline, use_calibration=False) == 1

    def test_missing_calibration_on_one_side_compares_raw(self, tmp_path, capsys):
        baseline = _document({"a": 100.0})
        current = _document({"a": 100.0}, calibration=500_000.0)
        assert _run(tmp_path, current, baseline) == 0
        assert "comparing raw events/sec" in capsys.readouterr().out


class TestMainEntry:
    def test_main_parses_arguments(self, tmp_path):
        document = _document({"a": 100.0})
        current = _write(tmp_path, "current.json", document)
        baseline = _write(tmp_path, "baseline.json", document)
        assert compare.main([str(current), str(baseline)]) == 0
        assert compare.main([str(current), str(baseline), "--no-calibration"]) == 0
        assert compare.main(
            [str(current), str(baseline), "--max-regression", "0.5"]
        ) == 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))


class TestGatedFlag:
    def test_ungated_rows_are_excluded_from_the_gate(self, tmp_path, capsys):
        # The open-loop row regresses badly, but it is marked gated: false
        # (reported-only), so the gate only sees the sim row and passes.
        current = _document({"lion": 100.0})
        current["cases"].append(
            {"name": "openloop-surge-2x", "events_per_second": 1.0, "gated": False}
        )
        baseline = _document({"lion": 100.0, "openloop-surge-2x": 1000.0})
        baseline["cases"][-1]["gated"] = False
        assert _run(tmp_path, current, baseline) == 0
        assert "excluded from the gate" in capsys.readouterr().out
