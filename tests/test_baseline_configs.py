"""Unit tests for baseline protocol configurations and their client configs."""

import pytest

from repro.baselines import (
    PaxosConfig,
    PBFTConfig,
    UpRightConfig,
    paxos_client_config,
    pbft_client_config,
    upright_client_config,
)


class TestPaxosConfig:
    def test_build_sizes(self):
        config = PaxosConfig.build(2)
        assert config.network_size == 5           # 2f+1
        assert config.agreement_quorum == 3       # f+1
        assert config.client_reply_quorum == 1
        assert not config.messages_are_signed

    def test_too_small_network_rejected(self):
        with pytest.raises(ValueError):
            PaxosConfig(replicas=("a", "b"), crash_tolerance=1)

    def test_primary_rotates(self):
        config = PaxosConfig.build(1)
        primaries = {config.primary_of_view(v) for v in range(6)}
        assert primaries == set(config.replicas)

    def test_negative_view_rejected(self):
        with pytest.raises(ValueError):
            PaxosConfig.build(1).primary_of_view(-1)

    def test_other_replicas_excludes_self(self):
        config = PaxosConfig.build(1)
        me = config.replicas[0]
        assert me not in config.other_replicas(me)
        assert len(config.other_replicas(me)) == config.network_size - 1


class TestPBFTConfig:
    def test_build_sizes(self):
        config = PBFTConfig.build(2)
        assert config.network_size == 7           # 3f+1
        assert config.agreement_quorum == 5       # 2f+1
        assert config.commit_quorum == 5
        assert config.client_reply_quorum == 3    # f+1
        assert config.messages_are_signed

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            PBFTConfig(replicas=("a", "b", "c"), byzantine_tolerance=1)


class TestUpRightConfig:
    def test_hybrid_sizes_match_paper(self):
        config = UpRightConfig.build(crash_tolerance=1, byzantine_tolerance=1)
        assert config.network_size == 6           # 3m+2c+1
        assert config.agreement_quorum == 4       # 2m+c+1
        assert config.client_reply_quorum == 2    # m+1

    def test_figure2_network_sizes(self):
        # Figure 2 captions: S-UpRight networks of 6, 11, 12, and 10 nodes.
        assert UpRightConfig.build(1, 1).network_size == 6
        assert UpRightConfig.build(2, 2).network_size == 11
        assert UpRightConfig.build(1, 3).network_size == 12
        assert UpRightConfig.build(3, 1).network_size == 10

    def test_messages_signed_because_faults_not_localised(self):
        assert UpRightConfig.build(1, 1).messages_are_signed


class TestBaselineClientConfigs:
    def test_paxos_client_accepts_single_leader_reply(self):
        config = PaxosConfig.build(1)
        client_config = paxos_client_config(config)
        assert client_config.replies_needed == 1
        assert client_config.request_targets(0, 0) == [config.primary_of_view(0)]
        assert set(client_config.trusted_replicas) == set(config.replicas)
        assert set(client_config.targets_for_retransmit(0, 0)) == set(config.replicas)

    def test_pbft_client_needs_f_plus_1_matching(self):
        config = PBFTConfig.build(2)
        client_config = pbft_client_config(config)
        assert client_config.replies_needed == 3
        assert client_config.trusted_replicas == frozenset()

    def test_upright_client_needs_m_plus_1_matching(self):
        config = UpRightConfig.build(crash_tolerance=2, byzantine_tolerance=1)
        client_config = upright_client_config(config)
        assert client_config.replies_needed == 2

    def test_client_targets_follow_the_view(self):
        config = PBFTConfig.build(1)
        client_config = pbft_client_config(config)
        assert client_config.request_targets(0, 0) == [config.primary_of_view(0)]
        assert client_config.request_targets(1, 0) == [config.primary_of_view(1)]
