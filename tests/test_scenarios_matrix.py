"""The scenario-matrix regression net: every named scenario, every mode.

This is the standing gate for protocol changes: each library scenario runs
under Lion, Dog, and Peacock with all invariant checkers sampling
continuously, and must uphold every invariant and expectation.

The matrix is deliberately *not* marked ``slow`` — it is the acceptance
surface for fault behaviour (``pytest tests/test_scenarios*.py -m "not
slow"``).  CI runs a smoke subset of it on every push (see
``.github/workflows/ci.yml``) and the full matrix nightly.
"""

import pytest

from repro.core import Mode
from repro.scenarios import SCENARIOS, run_scenario

pytestmark = pytest.mark.integration

MODES = [Mode.LION, Mode.DOG, Mode.PEACOCK]


def test_library_is_large_enough():
    """The acceptance floor: at least 10 named scenarios in the library."""
    assert len(SCENARIOS) >= 10


@pytest.mark.parametrize("mode", MODES, ids=lambda mode: mode.name.lower())
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_matrix(name, mode):
    result = run_scenario(SCENARIOS[name], mode)
    result.assert_ok()
    assert result.completed >= SCENARIOS[name].min_completed
