"""Latency SLOs, admission control, and the open-loop surge scenarios."""

import pytest

from repro.core.admission import AdmissionPolicy
from repro.scenarios.openloop import (
    OPEN_LOOP_SCENARIOS,
    SURGE_ADMISSION_OFF,
    SURGE_ADMISSION_ON,
    run_open_loop_scenario,
)
from repro.workload.metrics import MetricsCollector
from repro.workload.slo import SlaViolation, SloSpec, evaluate_slo

pytestmark = pytest.mark.openloop


class TestAdmissionPolicy:
    def test_sheds_at_watermark(self):
        policy = AdmissionPolicy(max_outstanding=10)
        assert not policy.should_shed(queued=4, in_flight=5)
        assert policy.should_shed(queued=5, in_flight=5)
        assert policy.should_shed(queued=100, in_flight=0)

    def test_invalid_watermark_rejected(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_outstanding=0)


def _collector_with(latencies_by_bin):
    """A collector with one completion per (bin_start, latency) pair."""
    collector = MetricsCollector()
    timestamp = 0
    for bin_start, latencies in latencies_by_bin:
        for latency in latencies:
            timestamp += 1
            collector.record_completion(
                client_id="c0",
                timestamp=timestamp,
                sent_at=bin_start,
                completed_at=bin_start + latency,
            )
    return collector


class TestSloSpec:
    def test_unsupported_percentile_rejected(self):
        with pytest.raises(ValueError):
            SloSpec(percentile=0.42)

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            SloSpec(bound=0.0)

    def test_field_name_maps_percentile(self):
        assert SloSpec(percentile=0.999, bound=1.0).field_name == "p999"


class TestEvaluateSlo:
    def test_holds_when_under_bound(self):
        collector = _collector_with([(0.0, [0.01] * 10), (0.25, [0.02] * 10)])
        evaluation = evaluate_slo(SloSpec(bound=0.05), collector)
        assert evaluation.holds
        assert evaluation.bins == 2
        assert evaluation.violating_bins == 0

    def test_single_bad_bin_violates_strict_budget(self):
        collector = _collector_with([(0.0, [0.01] * 10), (0.25, [0.2] * 10)])
        evaluation = evaluate_slo(SloSpec(bound=0.05), collector)
        assert not evaluation.holds
        assert evaluation.violating_bins == 1
        assert evaluation.first_violation_at == pytest.approx(0.25)
        assert evaluation.worst == pytest.approx(0.2)

    def test_violation_budget_tolerates_blip(self):
        collector = _collector_with(
            [(0.25 * i, [0.01] * 10) for i in range(9)] + [(0.25 * 9, [0.2] * 10)]
        )
        spec = SloSpec(bound=0.05, max_violation_fraction=0.2)
        assert evaluate_slo(spec, collector).holds

    def test_empty_collector_vacuously_holds(self):
        evaluation = evaluate_slo(SloSpec(bound=0.05), MetricsCollector())
        assert evaluation.holds
        assert evaluation.bins == 0


class _FakeSimulator:
    def __init__(self, now):
        self.now = now


class _FakeDeployment:
    def __init__(self, metrics, now):
        self.metrics = metrics
        self.simulator = _FakeSimulator(now)


class TestSlaViolationChecker:
    def test_fires_only_on_closed_bins(self):
        collector = _collector_with([(0.0, [0.2] * 10)])
        checker = SlaViolation(SloSpec(bound=0.05))
        deployment = _FakeDeployment(collector, now=0.1)
        checker.attach(deployment)
        assert checker.check(deployment) == []  # bin [0, 0.25) still open
        deployment.simulator.now = 0.3
        assert checker.check(deployment)  # now closed, over bound

    def test_finalize_judges_everything(self):
        collector = _collector_with([(0.0, [0.2] * 10)])
        checker = SlaViolation(SloSpec(bound=0.05))
        deployment = _FakeDeployment(collector, now=0.1)
        checker.attach(deployment)
        assert checker.finalize(deployment)

    def test_quiet_run_never_fires(self):
        collector = _collector_with([(0.0, [0.01] * 10), (0.25, [0.01] * 10)])
        checker = SlaViolation(SloSpec(bound=0.05))
        deployment = _FakeDeployment(collector, now=1.0)
        checker.attach(deployment)
        assert checker.check(deployment) == []
        assert checker.finalize(deployment) == []


class TestSurgeScenarios:
    """The headline gate: 1M modeled users surging past capacity.

    With admission control on, the primary sheds the excess with signed
    Busy rejects and the served-latency SLO holds; with it off, the same
    surge bloats the queue and the SLA checker fires.  Both runs model
    1M+ users through a bounded connection pool.
    """

    def test_admission_on_holds_slo(self):
        assert SURGE_ADMISSION_ON.num_users >= 1_000_000
        outcome = run_open_loop_scenario(SURGE_ADMISSION_ON)
        result = outcome.result
        assert result.slo_holds, result.slo.describe()
        assert not outcome.checker_fired
        # The excess was genuinely shed, not silently absorbed.
        assert result.shed > 0
        assert result.busy_rejects > 0
        assert result.completed > 0
        assert result.safety_violations == 0

    def test_admission_off_fires_checker(self):
        assert SURGE_ADMISSION_OFF.num_users >= 1_000_000
        outcome = run_open_loop_scenario(SURGE_ADMISSION_OFF)
        result = outcome.result
        assert result.slo_holds is False
        assert outcome.checker_fired
        assert result.busy_rejects == 0  # no admission control, no rejects
        assert result.completed > 0
        assert result.safety_violations == 0

    def test_library_is_consistent(self):
        assert set(OPEN_LOOP_SCENARIOS) == {
            "surge-admission-on",
            "surge-admission-off",
        }
        for name, scenario in OPEN_LOOP_SCENARIOS.items():
            assert scenario.name == name


class TestOpenLoopEndToEnd:
    def test_counters_conserve_and_requests_complete(self):
        from repro.cluster.builders import build_seemore
        from repro.cluster.runner import run_open_loop
        from repro.workload.openloop import ClientPopulation, PoissonArrivals

        deployment = build_seemore(num_clients=0, seed=5)
        population = ClientPopulation(
            num_users=10_000, arrivals=PoissonArrivals(rate=300.0, seed=5), seed=5
        )
        driver = deployment.client_pool.spawn_open_loop(
            population, connections=8, max_backlog=100, window=2
        )
        result = run_open_loop(deployment, driver, duration=1.0, warmup=0.2)
        assert result.completed > 100
        assert result.safety_violations == 0
        # Every offered arrival is accounted for: completed, dropped at the
        # backlog, shed after Busy rejects, or still in flight / queued.
        accounted = result.completed + result.dropped + result.shed
        assert accounted <= result.offered
        in_pipeline = driver.backlog_depth + driver.active_requests
        assert result.offered - accounted <= in_pipeline + 8 * 2
        # Latency is stamped from arrival, so it includes real queueing and
        # is strictly positive.
        assert result.latency.p50 > 0.0

    def test_million_user_live_run_memory_is_o_active(self):
        """The full pipeline (population -> driver -> cluster) at 1.5M users.

        The deployment itself costs a few MB; per-user state at 1.5M users
        would add tens more.  The bound separates the two by a wide margin.
        """
        import tracemalloc

        from repro.cluster.builders import build_seemore
        from repro.cluster.runner import run_open_loop
        from repro.workload.openloop import ClientPopulation, PoissonArrivals

        tracemalloc.start()
        try:
            deployment = build_seemore(num_clients=0, seed=6)
            population = ClientPopulation(
                num_users=1_500_000,
                arrivals=PoissonArrivals(rate=400.0, seed=6),
                seed=6,
            )
            driver = deployment.client_pool.spawn_open_loop(
                population, connections=8, max_backlog=100, window=2
            )
            result = run_open_loop(deployment, driver, duration=0.5, warmup=0.1)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert result.completed > 0
        assert peak < 24 * 1024 * 1024, f"peak {peak} bytes is not O(active)"
