"""Integration tests: batching and pipelining through the full protocol.

Covers the agreement path with batches in all three modes, per-request
reply fan-out, exactly-once execution, and — the delicate part — view
changes while a pipeline of batches is partially committed: the new view
must re-propose every uncommitted batch exactly once.
"""

import pytest

from repro.cluster import build_seemore
from repro.core import BatchPolicy, Mode
from repro.core import messages as msgs
from repro.core.view_change import NOOP_CLIENT
from repro.faults import crash_primary
from repro.smr.ledger import assert_ledgers_consistent
from repro.smr.messages import Batch
from repro.smr.replica import request_digest
from repro.smr.state_machine import Operation
from repro.workload import microbenchmark

pytestmark = pytest.mark.integration

ALL_MODES = [Mode.LION, Mode.DOG, Mode.PEACOCK]

# Fast tier: exercise the full batched pipeline once (Lion); the other
# modes and the fault scenarios run with the slow tier / full suite.
MODES_LION_FAST = [
    Mode.LION,
    pytest.param(Mode.DOG, marks=pytest.mark.slow),
    pytest.param(Mode.PEACOCK, marks=pytest.mark.slow),
]

BATCHING = BatchPolicy(max_batch=8, linger=0.002)


def build(mode, policy=BATCHING, **kwargs):
    return build_seemore(
        crash_tolerance=1,
        byzantine_tolerance=1,
        mode=mode,
        workload=microbenchmark("0/0"),
        num_clients=kwargs.pop("num_clients", 3),
        client_window=kwargs.pop("client_window", 4),
        batch_policy=policy,
        seed=kwargs.pop("seed", 11),
        client_timeout=0.1,
        **kwargs,
    )


def assert_exactly_once(deployment):
    """No correct replica executed any client request twice."""
    for replica in deployment.correct_replicas():
        keys = [
            (execution.client_id, execution.timestamp)
            for execution in replica.executor.executed
            if execution.client_id != NOOP_CLIENT
        ]
        assert len(keys) == len(set(keys)), (
            f"{replica.node_id} executed a request twice"
        )


def assert_no_client_holes(deployment):
    """No request was lost while later ones kept completing.

    With a pipelined window the run's cut-off leaves up to ``window``
    recently issued requests incomplete, so holes are tolerated only in the
    very tail; a *deep* hole means a request was dropped for good.
    """
    for client in deployment.clients:
        stamps = {record.timestamp for record in client.completed}
        if not stamps:
            continue
        top = max(stamps)
        missing = set(range(1, top + 1)) - stamps
        assert len(missing) <= client.window, (
            f"{client.node_id} lost {len(missing)} requests: {sorted(missing)[:10]}"
        )
        cutoff = top - 4 * client.window
        deep = [ts for ts in missing if ts <= cutoff]
        assert not deep, f"{client.node_id} has deep holes (lost requests): {deep[:10]}"


class TestBatchedNormalCase:
    @pytest.mark.parametrize("mode", MODES_LION_FAST)
    def test_batched_agreement_completes_and_stays_safe(self, mode):
        deployment = build(mode)
        deployment.start_clients()
        deployment.run(0.6)
        deployment.stop_clients()

        assert deployment.metrics.completed > 50
        assert_ledgers_consistent(deployment.correct_ledgers())
        assert_exactly_once(deployment)
        assert_no_client_holes(deployment)

    @pytest.mark.parametrize("mode", MODES_LION_FAST)
    def test_batches_actually_form(self, mode):
        deployment = build(mode)
        deployment.start_clients()
        deployment.run(0.6)
        deployment.stop_clients()
        deployment.collect_batch_sizes()

        summary = deployment.metrics.batch_summary()
        assert summary.batches > 0
        assert summary.maximum > 1, "with 12 outstanding requests batches must form"
        assert summary.requests >= deployment.metrics.completed

    @pytest.mark.slow
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_replies_fan_out_per_request(self, mode):
        """Every client request gets its own reply even when committed
        inside a batch."""
        deployment = build(mode)
        deployment.start_clients()
        deployment.run(0.6)
        deployment.stop_clients()

        for client in deployment.clients:
            assert client.completed_count > 10

    @pytest.mark.slow
    def test_unbatched_policy_unchanged_one_request_per_slot(self):
        deployment = build(Mode.LION, policy=BatchPolicy(), client_window=1)
        deployment.start_clients()
        deployment.run(0.3)
        deployment.stop_clients()

        primary = deployment.replicas[deployment.extras["config"].private_replicas[0]]
        assert primary.batcher.batches_proposed > 0
        assert primary.batcher.mean_batch_size() == 1.0
        for slot in (primary.slots.existing_slot(seq) for seq in primary.slots.sequences):
            if slot is not None and slot.request is not None:
                assert slot.request_count == 1


@pytest.mark.slow
class TestViewChangeWithInFlightBatches:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_primary_crash_mid_pipeline_recovers_exactly_once(self, mode):
        """Crash the primary while batches are in flight: the new view must
        recover every request without loss or double execution."""
        deployment = build(mode, num_clients=4, client_window=4)
        deployment.start_clients()
        deployment.run(0.25)
        crash_primary(deployment)
        deployment.run(1.2)
        deployment.stop_clients()

        completed_after = deployment.metrics.completed
        assert completed_after > 60, "progress must resume after the view change"
        views = {replica.view for replica in deployment.correct_replicas()}
        assert views == {max(views)} and max(views) >= 1
        assert_ledgers_consistent(deployment.correct_ledgers())
        assert_exactly_once(deployment)
        assert_no_client_holes(deployment)

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_batches_survive_the_view_change_intact(self, mode):
        """Batched slots committed after the crash keep their multi-request
        payloads: the new view re-proposes whole batches, not fragments."""
        deployment = build(mode, num_clients=4, client_window=4)
        deployment.start_clients()
        deployment.run(0.25)
        crash_primary(deployment)
        deployment.run(1.2)
        deployment.stop_clients()

        batched_slots = 0
        for replica in deployment.correct_replicas():
            for sequence in replica.slots.sequences:
                slot = replica.slots.existing_slot(sequence)
                if slot is not None and slot.committed and slot.request_count > 1:
                    batched_slots += 1
        assert batched_slots > 0
        assert_ledgers_consistent(deployment.correct_ledgers())


class TestProposalGuard:
    def test_non_primary_refuses_to_propose(self):
        """A backup (or a just-demoted primary whose batcher pump fires)
        must never sign and send ordering messages."""
        deployment = build(Mode.LION)
        config = deployment.extras["config"]
        backup = deployment.replicas[config.public_replicas[0]]
        request = make_signed_request(deployment, "guard-client", 1)
        assert not backup.is_primary()
        assert backup.strategy.propose_payload(backup, request) is None
        assert backup.next_sequence == 1


def make_signed_request(deployment, client_id, timestamp):
    from repro.smr.messages import Request

    deployment.keystore.register(client_id)
    request = Request(
        operation=Operation("noop"), timestamp=timestamp, client_id=client_id
    )
    request.sign(deployment.keystore.signer_for(client_id))
    return request


class TestReassignmentAfterViewChange:
    def test_retransmission_of_reproposed_batch_request_gets_no_second_slot(self):
        """After a new view re-proposes an uncommitted batch, a client
        retransmission of a request inside it must not be assigned a second
        sequence number by the new primary (clear_assignments() runs before
        the re-proposal, so the slot fill must re-record the assignment)."""
        from repro.smr.messages import Request

        deployment = build(Mode.LION)
        config = deployment.extras["config"]
        keystore = deployment.keystore

        client_id = "retrans-client"
        keystore.register(client_id)
        request = Request(
            operation=Operation("noop"), timestamp=1, client_id=client_id
        )
        request.sign(keystore.signer_for(client_id))
        batch = Batch(requests=[request])
        entry = msgs.PreparedEntry(
            sequence=1, view=0, digest=request_digest(batch), request=batch
        )

        new_primary_id = config.primary_of_view(1, Mode.LION)
        new_primary = deployment.replicas[new_primary_id]
        new_view = msgs.NewView(
            new_view=1,
            mode=int(Mode.LION),
            replica_id=new_primary_id,
            checkpoint_sequence=0,
            prepares=[entry],
        )
        new_view.sign(new_primary.signer)
        new_primary.view_changes.enter_new_view(new_primary_id, new_view)
        assert new_primary.is_primary()
        sequences_before = new_primary.next_sequence

        # The client retransmits while the re-proposed slot is uncommitted.
        new_primary.strategy.on_request(new_primary, client_id, request)
        assert new_primary.next_sequence == sequences_before, (
            "retransmitted request was assigned a second sequence number"
        )
        assert new_primary.batcher.queued == 0


class TestNewViewReproposesBatches:
    """Deterministic check: the collector's NEW-VIEW carries every prepared
    batch exactly once (per mode), alongside the existing no-op filling."""

    @staticmethod
    def _batch(client_base: str, size: int) -> Batch:
        from repro.smr.messages import Request

        return Batch(
            requests=[
                Request(
                    operation=Operation("noop"),
                    timestamp=index + 1,
                    client_id=f"{client_base}-{index}",
                    signed=False,
                )
                for index in range(size)
            ]
        )

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_new_view_contains_each_uncommitted_batch_once(self, mode):
        deployment = build(mode)
        config = deployment.extras["config"]
        collector_id = (
            config.transferer_of_view(1)
            if mode is Mode.PEACOCK
            else config.primary_of_view(1, mode)
        )
        collector = deployment.replicas[collector_id]
        manager = collector.view_changes

        batch_a = self._batch("alpha", 3)
        batch_b = self._batch("beta", 2)
        entries = [
            msgs.PreparedEntry(
                sequence=1, view=0, digest=request_digest(batch_a), request=batch_a
            ),
            msgs.PreparedEntry(
                sequence=2, view=0, digest=request_digest(batch_b), request=batch_b
            ),
        ]

        def vc_from(replica_id):
            view_change = msgs.ViewChange(
                new_view=1,
                mode=int(mode),
                replica_id=replica_id,
                checkpoint_sequence=0,
                checkpoint_digest="",
                prepared=list(entries),
            )
            view_change.sign(deployment.replicas[replica_id].signer)
            return view_change

        senders = [
            replica_id
            for replica_id in (
                config.all_replicas if mode is Mode.LION else config.public_replicas
            )
            if replica_id != collector_id
        ]
        view_changes = [vc_from(sender) for sender in senders[:4]]
        new_view = manager._build_new_view_message(1, mode, view_changes)

        carried = new_view.prepares + new_view.commits
        digests = [entry.digest for entry in carried if entry.sequence in (1, 2)]
        assert sorted(digests) == sorted(
            [request_digest(batch_a), request_digest(batch_b)]
        ), "each uncommitted batch must appear exactly once in the new view"
        for entry in carried:
            if entry.sequence == 1:
                assert isinstance(entry.request, Batch) and len(entry.request) == 3
            if entry.sequence == 2:
                assert isinstance(entry.request, Batch) and len(entry.request) == 2
