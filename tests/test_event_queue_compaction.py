"""Live-count accounting and auto-compaction of the event queue.

Timer-heavy runs arm and disarm a view-change timer on nearly every commit;
cancelled events must neither skew ``len(queue)`` (double-counted cancels)
nor accumulate in the heap forever (the old code grew until someone called
``discard_cancelled()`` by hand).
"""

from __future__ import annotations

from repro.sim.events import EventQueue, _COMPACT_MIN_HEAP
from repro.sim.simulator import Simulator


class TestCancelAccounting:
    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.cancel(event) is True
        assert queue.cancel(event) is False  # second cancel is a no-op
        assert len(queue) == 1

    def test_cancelling_fired_event_is_noop(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        fired = queue.pop()
        assert fired is event
        assert queue.cancel(event) is False
        assert len(queue) == 1

    def test_simulator_cancel_twice_keeps_live_count(self):
        simulator = Simulator()
        event = simulator.call_later(1.0, lambda: None)
        simulator.call_later(2.0, lambda: None)
        simulator.cancel(event)
        simulator.cancel(event)
        assert simulator.pending_events == 1

    def test_timer_repeated_start_stop_keeps_live_count(self):
        """The audit target: Timer.stop after fire / double stop never skews."""
        simulator = Simulator()
        fired = []
        timer = simulator.timer(lambda: fired.append(simulator.now), label="t")
        for _ in range(50):
            timer.start(0.5)
            timer.stop()
            timer.stop()  # double stop
        assert simulator.pending_events == 0

        timer.start(0.25)
        simulator.run()
        assert fired == [0.25]
        timer.stop()  # stop after fire must not decrement live count
        assert simulator.pending_events == 0

        # The queue still works normally afterwards.
        timer.start(1.0)
        assert simulator.pending_events == 1
        simulator.run()
        assert len(fired) == 2

    def test_bare_event_cancel_routes_through_queue_accounting(self):
        """Event.cancel() alone (no note_cancelled) must keep counts exact
        and still feed auto-compaction."""
        simulator = Simulator()
        events = [simulator.call_later(1.0, lambda: None) for _ in range(10_000)]
        for event in events[:-1]:
            event.cancel()
            event.cancel()  # double-cancel via the public API
        assert simulator.pending_events == 1
        queue = simulator._queue
        assert queue.cancelled_in_heap >= 0
        assert queue.heap_size <= 2 * _COMPACT_MIN_HEAP  # compaction fired

    def test_legacy_cancel_plus_note_cancelled_does_not_double_count(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        queue.note_cancelled()  # legacy two-step protocol
        assert len(queue) == 1

    def test_fast_path_events_count_and_fire(self):
        simulator = Simulator()
        fired = []
        simulator.defer(0.5, lambda: fired.append("fast"))
        simulator.call_later(1.0, lambda: fired.append("slow"))
        assert simulator.pending_events == 2
        simulator.run()
        assert fired == ["fast", "slow"]
        assert simulator.pending_events == 0


class TestAutoCompaction:
    def test_compacts_when_cancelled_majority(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(2 * _COMPACT_MIN_HEAP)]
        # Cancel just over half; the queue must shrink its heap on its own.
        for event in events[: _COMPACT_MIN_HEAP + 1]:
            queue.cancel(event)
        assert queue.cancelled_in_heap == 0  # compaction already ran
        assert queue.heap_size == len(queue) == _COMPACT_MIN_HEAP - 1

    def test_small_heaps_are_left_alone(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(8)]
        for event in events[:7]:
            queue.cancel(event)
        # Below the floor: cancelled entries stay until popped over.
        assert queue.cancelled_in_heap == 7
        assert queue.heap_size == 8
        assert len(queue) == 1

    def test_pop_order_survives_compaction(self):
        queue = EventQueue()
        fired = []
        keep = []
        for i in range(3 * _COMPACT_MIN_HEAP):
            event = queue.push(float(i), lambda i=i: fired.append(i))
            if i % 3 == 0:
                keep.append(i)
            else:
                queue.cancel(event)
        while queue:
            queue.pop().action()
        assert fired == keep

    def test_timer_churn_does_not_grow_heap_unboundedly(self):
        simulator = Simulator()
        timer = simulator.timer(lambda: None, label="churn")
        for _ in range(10_000):
            timer.start(1.0)
        # Without auto-compaction the heap would hold ~10k cancelled shells.
        queue = simulator._queue
        assert queue.heap_size <= 2 * _COMPACT_MIN_HEAP
        assert simulator.pending_events == 1
