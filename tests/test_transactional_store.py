"""Unit tests for the transactional key-value state machine (2PC participant)."""

import pytest

from repro.smr.state_machine import Operation, TransactionalKeyValueStore

pytestmark = pytest.mark.shard


def _prepare(txn_id, *writes):
    return Operation("txn_prepare", (txn_id, tuple(writes)))


def _decide(txn_id, outcome):
    return Operation("txn_decide", (txn_id, outcome))


class TestTransactionLifecycle:
    def test_prepare_stages_without_applying(self):
        store = TransactionalKeyValueStore()
        result = store.apply(_prepare("t1", ("put", "k", "v")))
        assert result == {"ok": True, "txn": "t1", "vote": "yes"}
        assert store.get("k") is None
        assert store.staged_transactions() == ["t1"]

    def test_commit_applies_staged_writes(self):
        store = TransactionalKeyValueStore()
        store.apply(Operation("put", ("doomed", "x")))
        store.apply(_prepare("t1", ("put", "k", "v"), ("delete", "doomed")))
        result = store.apply(_decide("t1", "commit"))
        assert result["ok"] is True
        assert store.get("k") == "v"
        assert store.get("doomed") is None
        assert store.staged_transactions() == []
        assert store.txns_committed == 1

    def test_abort_discards_staged_writes(self):
        store = TransactionalKeyValueStore()
        store.apply(_prepare("t1", ("put", "k", "v")))
        store.apply(_decide("t1", "abort"))
        assert store.get("k") is None
        assert store.txns_aborted == 1
        assert store.staged_transactions() == []

    def test_abort_before_prepare_leaves_a_tombstone(self):
        # A timed-out coordinator's abort can be ordered before the
        # retransmitted prepare; the late prepare must vote no and stage
        # nothing, or a second decide could commit a half-transaction.
        store = TransactionalKeyValueStore()
        store.apply(_decide("t1", "abort"))
        result = store.apply(_prepare("t1", ("put", "k", "v")))
        assert result["vote"] == "no"
        assert store.staged_transactions() == []
        assert store.get("k") is None

    def test_first_decision_wins_and_duplicates_are_flagged(self):
        store = TransactionalKeyValueStore()
        store.apply(_prepare("t1", ("put", "k", "v")))
        store.apply(_decide("t1", "commit"))
        duplicate = store.apply(_decide("t1", "abort"))
        assert duplicate == {"ok": True, "txn": "t1", "outcome": "commit", "duplicate": True}
        assert store.get("k") == "v"
        assert store.txns_committed == 1
        assert store.txns_aborted == 0

    def test_commit_without_prepare_is_reported_not_raised(self):
        store = TransactionalKeyValueStore()
        result = store.apply(_decide("t1", "commit"))
        assert result["ok"] is False
        assert result["error"] == "commit-without-prepare"

    def test_unknown_outcome_rejected(self):
        store = TransactionalKeyValueStore()
        with pytest.raises(ValueError):
            store.apply(_decide("t1", "maybe"))


class TestAtomicMultiWrite:
    def test_txn_applies_all_writes_in_one_step(self):
        store = TransactionalKeyValueStore()
        result = store.apply(Operation("txn", (("put", "a", "1"), ("put", "b", "2"))))
        assert result == {"ok": True, "writes": 2}
        assert store.get("a") == "1" and store.get("b") == "2"

    def test_plain_kv_operations_still_work(self):
        store = TransactionalKeyValueStore()
        store.apply(Operation("put", ("k", "v")))
        assert store.apply(Operation("get", ("k",))) == {"ok": True, "value": "v"}


class TestSnapshotRoundTrip:
    def test_snapshot_carries_staged_and_decisions(self):
        store = TransactionalKeyValueStore()
        store.apply(Operation("put", ("k", "v")))
        store.apply(_prepare("pending", ("put", "p", "1")))
        store.apply(_prepare("done", ("put", "d", "2")))
        store.apply(_decide("done", "commit"))

        restored = TransactionalKeyValueStore()
        restored.restore(store.snapshot())
        assert restored.get("k") == "v" and restored.get("d") == "2"
        assert restored.staged_transactions() == ["pending"]
        assert restored.txn_decisions == {"done": "commit"}
        # The restored replica honours the tombstone/staging exactly like
        # the original: committing the pending transaction applies it.
        restored.apply(_decide("pending", "commit"))
        assert restored.get("p") == "1"

    def test_snapshot_digests_identically_across_replicas(self):
        from repro.crypto.digest import digest

        first, second = TransactionalKeyValueStore(), TransactionalKeyValueStore()
        for store in (first, second):
            store.apply(_prepare("t1", ("put", "k", "v")))
            store.apply(_decide("t1", "commit"))
        assert digest(first.snapshot()) == digest(second.snapshot())
