"""The adaptive controller: estimator units, policy edges, and the race cases.

The scenario-level gates (full escalate→de-escalate cycle, no flapping,
per-shard divergence) live in ``tests/test_adaptive_scenarios.py``; this
file covers the machinery underneath and the controller edge cases the
scenarios cannot pin precisely:

* evidence arriving while every possible initiator is mid-view-change;
* conflicting per-replica estimates (one noisy observer vs. a hard proof);
* cooldown expiry racing a fresh attack.
"""

import math

import pytest

from repro.adaptive import (
    AdaptivePolicy,
    EvidenceKind,
    EvidenceLog,
    EvidenceRecord,
    FaultEnvironmentEstimator,
)
from repro.analysis.report import format_adaptive_decisions
from repro.cluster.builders import build_seemore
from repro.core.modes import Mode
from repro.faults.byzantine import make_byzantine, restore_honest

pytestmark = pytest.mark.adaptive


def record(at, kind, suspect=None, observer="observer", detail=""):
    return EvidenceRecord(at=at, kind=kind, observer=observer, suspect=suspect, detail=detail)


PRIVATE = ("private-0", "private-1")
PUBLIC = ("public-0", "public-1", "public-2", "public-3")


class TestEvidenceLog:
    def test_records_stamp_simulated_time_and_read_incrementally(self):
        class FakeSimulator:
            now = 1.5

        log = EvidenceLog("private-0", FakeSimulator())
        log.record(EvidenceKind.TIMEOUT, suspect="private-1", detail="view=3")
        FakeSimulator.now = 2.5
        log.record(EvidenceKind.EQUIVOCATION, suspect="public-0")

        assert len(log) == 2
        assert log.records[0].at == 1.5 and log.records[0].observer == "private-0"
        fresh = log.records_since(1)
        assert len(fresh) == 1 and fresh[0].kind is EvidenceKind.EQUIVOCATION

    def test_compaction_bounds_retention_but_keeps_offsets_logical(self):
        class FakeSimulator:
            now = 0.0

        log = EvidenceLog("private-0", FakeSimulator())
        total = EvidenceLog.MAX_BUFFERED + 10
        for index in range(total):
            FakeSimulator.now = float(index)
            log.record(EvidenceKind.TIMEOUT, suspect="private-1")
        # Logical length counts every append; the retained tail is bounded.
        assert len(log) == total
        assert len(log.records) <= EvidenceLog.MAX_BUFFERED
        # A reader that kept up sees exactly the new records...
        offset = len(log)
        log.record(EvidenceKind.EQUIVOCATION, suspect="public-0")
        fresh = log.records_since(offset)
        assert [record.kind for record in fresh] == [EvidenceKind.EQUIVOCATION]
        # ...and one that fell behind gets the retained tail, never a crash.
        stale = log.records_since(0)
        assert stale[-1].kind is EvidenceKind.EQUIVOCATION
        assert len(stale) == len(log.records)


class TestEstimator:
    def test_classifies_byzantine_vs_churn_and_names_suspects(self):
        estimator = FaultEnvironmentEstimator(PRIVATE, PUBLIC, window=1.0)
        estimator.observe(
            [
                record(0.1, EvidenceKind.CONFLICTING_VOTE, suspect="public-1"),
                record(0.2, EvidenceKind.EQUIVOCATION, suspect="public-2"),
                record(0.3, EvidenceKind.TIMEOUT, suspect="private-0"),
                record(0.4, EvidenceKind.VIEW_CHANGE, suspect="private-0",
                       detail="suspected-primary"),
            ]
        )
        estimate = estimator.estimate(0.5)
        assert estimate.byzantine_suspects == {"public-1", "public-2"}
        assert estimate.crash_suspects == {"private-0"}
        assert estimate.byzantine_events == 2 and estimate.churn_events == 2
        assert estimate.active_byzantine == 2 and estimate.active_crash == 1

    def test_estimate_consults_the_sizing_equations(self):
        estimator = FaultEnvironmentEstimator(PRIVATE, PUBLIC, window=1.0)
        estimator.observe(
            [
                record(0.1, EvidenceKind.EQUIVOCATION, suspect="public-1"),
                record(0.2, EvidenceKind.TIMEOUT, suspect="private-0"),
            ]
        )
        estimate = estimator.estimate(0.3)
        # m̂=1, ĉ=1 -> N* = 3+2+1 = 6, quorum 2m̂+ĉ+1 = 4 (planner equations).
        assert estimate.required_network_size() == 6
        assert estimate.required_quorum() == 4
        assert estimate.within_tolerance(1, 1)
        assert not estimate.within_tolerance(0, 1)

    def test_window_prunes_counts_but_quiet_tracking_survives(self):
        estimator = FaultEnvironmentEstimator(PRIVATE, PUBLIC, window=0.2)
        estimator.observe([record(0.1, EvidenceKind.EQUIVOCATION, suspect="public-0")])
        aged = estimator.estimate(1.0)
        assert aged.byzantine_events == 0
        assert aged.last_byzantine_at == 0.1
        assert aged.quiet_for(1.0) == pytest.approx(0.9)
        fresh = FaultEnvironmentEstimator(PRIVATE, PUBLIC, window=0.2).estimate(1.0)
        assert fresh.quiet_for(1.0) == math.inf

    def test_discards_foreign_suspects_and_private_byzantine_claims(self):
        estimator = FaultEnvironmentEstimator(PRIVATE, PUBLIC, window=1.0)
        admitted = estimator.observe(
            [
                # Another shard's replica: not this estimator's problem.
                record(0.1, EvidenceKind.EQUIVOCATION, suspect="s1-public-0"),
                # The hybrid model admits no Byzantine faults in the
                # private cloud; an apparent proof there is noise.
                record(0.2, EvidenceKind.FORGED_REPLY, suspect="private-0"),
                record(0.3, EvidenceKind.CONFLICTING_VOTE, suspect="public-0"),
            ]
        )
        assert admitted == 1
        estimate = estimator.estimate(0.4)
        assert estimate.byzantine_suspects == {"public-0"}

    def test_unattributed_byzantine_evidence_counts_events_not_suspects(self):
        estimator = FaultEnvironmentEstimator(PRIVATE, PUBLIC, window=1.0)
        estimator.observe(
            [
                record(0.1, EvidenceKind.CONFLICTING_VOTE, suspect=None),
                record(0.2, EvidenceKind.CONFLICTING_VOTE, suspect=None),
            ]
        )
        estimate = estimator.estimate(0.3)
        assert estimate.byzantine_events == 2
        assert estimate.last_byzantine_at == 0.2
        # m-hat stays a floor of *provably* implicated nodes.
        assert estimate.byzantine_suspects == frozenset()
        assert estimate.within_tolerance(1, 1)

    def test_mode_switch_view_changes_never_count_as_churn(self):
        estimator = FaultEnvironmentEstimator(PRIVATE, PUBLIC, window=1.0)
        estimator.observe(
            [
                record(0.1, EvidenceKind.VIEW_CHANGE, detail="mode-switch"),
                record(0.2, EvidenceKind.VIEW_CHANGE, suspect="private-0",
                       detail="suspected-primary"),
            ]
        )
        estimate = estimator.estimate(0.3)
        assert estimate.churn_events == 1


class TestPolicyValidation:
    def test_rejects_nonsense_knobs(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(poll_interval=0)
        with pytest.raises(ValueError):
            AdaptivePolicy(hysteresis_polls=0)
        with pytest.raises(ValueError):
            AdaptivePolicy(cooldown=-0.1)


def build_adaptive(policy=None, **kwargs):
    kwargs.setdefault("mode", Mode.LION)
    kwargs.setdefault("num_clients", 2)
    kwargs.setdefault("seed", 11)
    deployment = build_seemore(adaptive=policy or AdaptivePolicy(), **kwargs)
    return deployment, deployment.extras["adaptive"]


class TestControllerEdgeCases:
    def test_evidence_during_in_flight_view_change_defers_the_switch(self):
        """Byzantine proof lands while every trusted replica is mid-view-change:
        the controller must wait for the view to install, then act."""
        deployment, controller = build_adaptive()
        for replica_id in ("private-0", "private-1"):
            deployment.replicas[replica_id].in_view_change = True
        witness = deployment.replicas["private-0"]
        for _ in range(3):
            witness.evidence.record(EvidenceKind.EQUIVOCATION, suspect="public-0")

        for _ in range(4):
            controller.poll()
        assert controller.decisions == []
        assert controller.deferred_polls > 0

        # The view change completes; the very next poll may act on the
        # evidence that arrived during it (still inside the window).
        for replica_id in ("private-0", "private-1"):
            deployment.replicas[replica_id].in_view_change = False
        decision = controller.poll()
        assert decision is not None and decision.to_mode is Mode.PEACOCK

    def test_conflicting_per_replica_estimates_need_threshold_or_proof(self):
        """One replica reporting sub-threshold churn moves nothing; a hard
        Byzantine proof from a single observer is enough on its own."""
        deployment, controller = build_adaptive()
        noisy = deployment.replicas["public-2"]
        noisy.evidence.record(EvidenceKind.TIMEOUT, suspect="private-0")
        noisy.evidence.record(EvidenceKind.TIMEOUT, suspect="private-0")
        for _ in range(4):
            assert controller.poll() is None
        assert controller.decisions == []

        # A cryptographic proof needs no corroborating observers.
        witness = deployment.replicas["public-3"]
        witness.evidence.record(EvidenceKind.EQUIVOCATION, suspect="public-0")
        witness.evidence.record(EvidenceKind.EQUIVOCATION, suspect="public-0")
        decisions = [controller.poll() for _ in range(2)]
        assert any(d is not None and d.to_mode is Mode.PEACOCK for d in decisions)

    def test_cooldown_expiry_racing_a_new_attack(self):
        """De-escalation and a fresh attack race: the controller must hold
        through the cooldown, then re-escalate, without extra transitions."""
        policy = AdaptivePolicy(quiet_period=0.15, cooldown=0.2)
        deployment, controller = build_adaptive(policy=policy, num_clients=3)
        deployment.start_clients()
        deployment.run(0.1)
        make_byzantine(deployment, "public-3", "equivocate")
        deployment.run(0.15)
        assert controller.current_mode() is Mode.PEACOCK
        restore_honest(deployment, "public-3")
        # Quiet period elapses -> de-escalation -> the attacker returns the
        # moment the group is back in Lion.
        deployment.run(0.3)
        assert controller.current_mode() is Mode.LION
        deescalated_at = controller.decisions[-1].at
        make_byzantine(deployment, "public-3", "equivocate")
        deployment.run(0.5)
        deployment.stop_clients()
        assert controller.current_mode() is Mode.PEACOCK

        reescalation = next(
            d for d in controller.decisions if d.at > deescalated_at and d.to_mode is Mode.PEACOCK
        )
        # The re-escalation respected the cooldown even though the evidence
        # threshold was crossed almost immediately.
        assert reescalation.at - deescalated_at >= policy.cooldown
        transitions = [(a.name, b.name) for _, a, b in controller.mode_transitions]
        assert transitions == [
            ("LION", "PEACOCK"), ("PEACOCK", "LION"), ("LION", "PEACOCK"),
        ]
        assert deployment.safety_violations() == []

    def test_controller_switch_rides_the_consensus_path(self):
        """A controller switch is a real mode switch: views advance and every
        correct replica lands in the new mode together."""
        deployment, controller = build_adaptive(num_clients=3)
        deployment.start_clients()
        deployment.run(0.1)
        views_before = {r.node_id: r.view for r in deployment.correct_replicas()}
        make_byzantine(deployment, "public-3", "equivocate")
        deployment.run(0.2)
        deployment.stop_clients()
        assert all(
            replica.mode is Mode.PEACOCK for replica in deployment.correct_replicas()
        )
        assert all(
            replica.view > views_before[replica.node_id]
            for replica in deployment.correct_replicas()
        )
        assert deployment.safety_violations() == []


class TestEvidenceEmission:
    def test_conflicting_lion_votes_are_flagged_by_the_primary(self):
        deployment, controller = build_adaptive(num_clients=2)
        deployment.start_clients()
        make_byzantine(deployment, "public-3", "equivocate")
        deployment.run(0.08)
        deployment.stop_clients()
        primary = deployment.replicas["private-0"]
        kinds = {r.kind for r in primary.evidence.records}
        suspects = {r.suspect for r in primary.evidence.records}
        assert EvidenceKind.CONFLICTING_VOTE in kinds
        assert "public-3" in suspects

    def test_corrupt_signatures_are_flagged_as_invalid(self):
        deployment, controller = build_adaptive(num_clients=2, mode=Mode.DOG)
        deployment.start_clients()
        make_byzantine(deployment, "public-3", "corrupt")
        deployment.run(0.15)
        deployment.stop_clients()
        flagged = [
            record
            for replica in deployment.correct_replicas()
            for record in replica.evidence.records
            if record.kind is EvidenceKind.INVALID_SIGNATURE
        ]
        assert any(record.suspect == "public-3" for record in flagged)

    def test_peacock_equivocating_primary_never_implicates_honest_proxies(self):
        """When an *untrusted primary* equivocates, honest proxies split over
        the assignment and contradict each other; the Byzantine accounting
        must keep escalation pressure without naming honest nodes (only the
        primary, via hard equivocation proofs, may be a suspect)."""
        deployment, controller = build_adaptive(num_clients=3, mode=Mode.PEACOCK)
        config = deployment.extras["config"]
        primary = config.primary_of_view(0, Mode.PEACOCK)
        deployment.start_clients()
        make_byzantine(deployment, primary, "equivocate")
        deployment.run(0.25)
        deployment.stop_clients()
        deployment.run(0.1)

        estimate = controller.estimator.estimate(deployment.simulator.now)
        honest_public = set(config.public_replicas) - {primary}
        assert not (set(estimate.byzantine_suspects) & honest_public), (
            estimate.byzantine_suspects
        )
        # The attack is still visible to the controller as Byzantine events.
        assert controller.estimator.counts_by_kind().get(
            EvidenceKind.CONFLICTING_VOTE, 0
        ) + controller.estimator.counts_by_kind().get(EvidenceKind.EQUIVOCATION, 0) > 0
        assert deployment.safety_violations() == []

    def test_restore_honest_stops_the_evidence_stream(self):
        deployment, controller = build_adaptive(num_clients=2)
        deployment.start_clients()
        make_byzantine(deployment, "public-3", "equivocate")
        deployment.run(0.1)
        restore_honest(deployment, "public-3")
        primary = deployment.replicas["private-0"]
        before = len(primary.evidence)
        deployment.run(0.2)
        deployment.stop_clients()
        fresh = [
            record
            for record in primary.evidence.records_since(before)
            if record.kind is EvidenceKind.CONFLICTING_VOTE
        ]
        assert fresh == []


class TestRecommendationDampers:
    def test_stepping_down_off_peacock_needs_byzantine_quiet(self):
        """Churn above threshold while Byzantine evidence is fresher than the
        quiet period must hold Peacock, not step down to Dog -- otherwise an
        attacker pausing past the evidence window rides concurrent churn
        into a Peacock<->Dog treadmill."""
        from repro.adaptive import FaultEnvironmentEstimate

        _, controller = build_adaptive()
        quiet = controller.policy.quiet_period
        churny = dict(churn_events=controller.policy.churn_escalation_events)
        fresh = FaultEnvironmentEstimate(
            at=1.0, window=0.2, last_byzantine_at=1.0 - quiet / 2, **churny
        )
        assert controller.recommend(fresh, Mode.PEACOCK, 1.0) is Mode.PEACOCK
        stale = FaultEnvironmentEstimate(
            at=1.0, window=0.2, last_byzantine_at=1.0 - 2 * quiet, **churny
        )
        assert controller.recommend(stale, Mode.PEACOCK, 1.0) is Mode.DOG
        # Escalating *into* Dog from Lion on churn needs no such wait.
        assert controller.recommend(fresh, Mode.LION, 1.0) is Mode.DOG


class TestUntrustedReplyFloor:
    def test_floor_is_decoupled_from_the_retransmit_quorum(self):
        """A deployment tuning retransmit_replies_needed down (e.g. to 1)
        must not silently lose the m+1 hardening for untrusted results in
        trusted-replier modes."""
        from repro.smr.client import Client, ClientConfig

        config = ClientConfig(
            request_targets=lambda view, mode: ["p0"],
            replies_needed=1,
            trusted_replicas=frozenset({"p0"}),
            retransmit_replies_needed=1,
            untrusted_replies_needed=2,
        )

        class Pending:
            retransmitted = False

        class Reply:
            mode = 0
            replica_id = "public-0"

        assert Client._untrusted_reply_quorum(config, Reply(), Pending()) == 2
        # Default: the floor falls back to the retransmit quorum.
        config_default = ClientConfig(
            request_targets=lambda view, mode: ["p0"],
            replies_needed=1,
            trusted_replicas=frozenset({"p0"}),
            retransmit_replies_needed=2,
        )
        assert Client._untrusted_reply_quorum(config_default, Reply(), Pending()) == 2


class TestAcceptanceCycle:
    """The PR's acceptance gate: a scenario run demonstrates the full
    escalate→de-escalate cycle (Lion → Peacock on injected equivocation,
    back to Lion after the quiet period) with zero safety-checker
    violations, and the oscillating-attacker scenario shows no flapping."""

    def test_full_escalate_deescalate_cycle_with_zero_violations(self):
        from repro.scenarios.adaptive import (
            DEESCALATE_AFTER_QUIET_PERIOD,
            run_adaptive_scenario,
        )

        result = run_adaptive_scenario(DEESCALATE_AFTER_QUIET_PERIOD, mode=Mode.LION)
        result.assert_ok()
        assert result.invariant_violations == {}
        assert result.final_modes == ("LION",)

    def test_oscillating_attacker_must_not_flap(self):
        from repro.scenarios.adaptive import (
            OSCILLATING_ATTACKER_MUST_NOT_FLAP,
            run_adaptive_scenario,
        )

        result = run_adaptive_scenario(OSCILLATING_ATTACKER_MUST_NOT_FLAP, mode=Mode.LION)
        result.assert_ok()
        assert result.invariant_violations == {}


class TestControllerLifecycle:
    def test_stop_then_start_resumes_polling_without_double_loops(self):
        deployment, controller = build_adaptive(num_clients=2)
        deployment.start_clients()
        deployment.run(0.1)
        assert controller.polls > 0
        controller.stop()
        deployment.run(0.1)
        frozen = controller.polls
        deployment.run(0.1)
        assert controller.polls == frozen
        controller.start()
        deployment.run(0.1)
        resumed = controller.polls
        assert resumed > frozen
        # Exactly one loop: poll count advances at ~1 per poll_interval,
        # not twice that, even after the stop/start bounce.
        deployment.run(0.2)
        deployment.stop_clients()
        added = controller.polls - resumed
        expected = round(0.2 / controller.policy.poll_interval)
        assert added <= expected + 1

    def test_latency_baseline_tracks_the_floor_and_resensitizes(self):
        """A baseline learned from an attack-inflated first window must drop
        once the mode runs clean, so later genuine drift is still seen."""
        deployment, controller = build_adaptive(num_clients=1)
        metrics = deployment.metrics

        def feed(now, latency, count=5):
            for index in range(count):
                metrics.record_completion(
                    client_id="c0",
                    timestamp=len(metrics.records) + index,
                    sent_at=now - latency,
                    completed_at=now,
                )
            controller._check_latency_drift(Mode.PEACOCK, now)

        feed(1.0, latency=0.005)   # inflated first window becomes baseline
        assert controller._latency_baseline[Mode.PEACOCK] == pytest.approx(0.005)
        feed(2.0, latency=0.001)   # clean windows pull the floor down
        assert controller._latency_baseline[Mode.PEACOCK] == pytest.approx(0.001)
        feed(3.0, latency=0.015)   # 15x the true floor: drift must fire now
        estimate = controller.estimator.estimate(3.0)
        assert estimate.churn_events >= 1
        assert controller.estimator.counts_by_kind().get(EvidenceKind.LATENCY_DRIFT) == 1


class TestDecisionReporting:
    def test_decisions_render_as_a_table(self):
        deployment, controller = build_adaptive(num_clients=3)
        deployment.start_clients()
        deployment.run(0.05)
        make_byzantine(deployment, "public-3", "equivocate")
        deployment.run(0.2)
        deployment.stop_clients()
        assert controller.switches_initiated >= 1
        text = format_adaptive_decisions(controller.decisions)
        assert "lion->peacock" in text
        assert "byzantine evidence" in text
        sharded = format_adaptive_decisions(controller.decisions, shard=2)
        assert "shard" in sharded.splitlines()[1]

    def test_empty_decision_table_renders_placeholder(self):
        assert "(no controller decisions)" in format_adaptive_decisions([])
