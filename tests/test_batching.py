"""Unit and property-based tests for the batching subsystem.

The :class:`~repro.core.batching.Batcher` sits between request intake and
per-mode proposal, so its contract is what keeps batching safe: every
enqueued request is proposed exactly once, in arrival order, regardless of
how arrivals interleave with linger timeouts, pipeline stalls, and refused
proposals.  The Hypothesis suite drives arbitrary arrival schedules through
a real simulator to pin that contract down.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import Batcher, BatchPolicy
from repro.sim import Simulator
from repro.smr.messages import Batch, Request, requests_of
from repro.smr.state_machine import Operation


def make_request(client: str, timestamp: int) -> Request:
    return Request(
        operation=Operation("noop"), timestamp=timestamp, client_id=client, signed=False
    )


class RecordingProposer:
    """Accepts proposals, handing out sequence numbers; can be paused."""

    def __init__(self) -> None:
        self.payloads = []
        self.next_sequence = 1
        self.refuse = False

    def __call__(self, payload):
        if self.refuse:
            return None
        sequence = self.next_sequence
        self.next_sequence += 1
        self.payloads.append((sequence, payload))
        return sequence

    def proposed_requests(self):
        flat = []
        for _, payload in self.payloads:
            flat.extend(requests_of(payload))
        return flat


def build_batcher(policy, simulator=None, proposer=None):
    simulator = simulator or Simulator()
    proposer = proposer or RecordingProposer()
    batcher = Batcher(policy, timer_factory=simulator.timer, propose=proposer)
    return simulator, proposer, batcher


class TestBatchPolicy:
    def test_default_policy_is_unbatched(self):
        policy = BatchPolicy()
        assert policy.max_batch == 1
        assert policy.linger == 0.0
        assert policy.pipeline_depth is None
        assert not policy.batching_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_batch": -3},
            {"linger": -0.1},
            {"pipeline_depth": 0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)

    def test_batching_enabled_flags(self):
        assert BatchPolicy(max_batch=8).batching_enabled
        assert BatchPolicy(linger=0.001).batching_enabled
        assert BatchPolicy(pipeline_depth=2).batching_enabled


class TestBatchMessage:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            Batch(requests=[])

    def test_batch_digest_depends_on_order(self):
        from repro.crypto.digest import digest

        a, b = make_request("c0", 1), make_request("c1", 1)
        assert digest(Batch(requests=[a, b]).signing_content()) != digest(
            Batch(requests=[b, a]).signing_content()
        )

    def test_batch_wire_size_grows_with_requests(self):
        a, b = make_request("c0", 1), make_request("c0", 2)
        assert Batch(requests=[a, b]).wire_size() > Batch(requests=[a]).wire_size()

    def test_requests_of_unwraps(self):
        a, b = make_request("c0", 1), make_request("c0", 2)
        assert requests_of(a) == [a]
        assert requests_of(Batch(requests=[a, b])) == [a, b]


class TestBatcherBasics:
    def test_unbatched_policy_proposes_bare_requests_immediately(self):
        _, proposer, batcher = build_batcher(BatchPolicy())
        request = make_request("c0", 1)
        batcher.enqueue(request)
        assert proposer.payloads == [(1, request)]
        assert batcher.queued == 0

    def test_full_batch_flushes_without_linger_expiry(self):
        simulator, proposer, batcher = build_batcher(BatchPolicy(max_batch=3, linger=10.0))
        for ts in range(1, 4):
            batcher.enqueue(make_request("c0", ts))
        assert len(proposer.payloads) == 1
        _, payload = proposer.payloads[0]
        assert isinstance(payload, Batch) and len(payload) == 3

    def test_linger_timer_flushes_partial_batch(self):
        simulator, proposer, batcher = build_batcher(BatchPolicy(max_batch=8, linger=0.01))
        batcher.enqueue(make_request("c0", 1))
        batcher.enqueue(make_request("c0", 2))
        assert proposer.payloads == []
        simulator.run(until=0.02)
        assert len(proposer.payloads) == 1
        assert len(requests_of(proposer.payloads[0][1])) == 2

    def test_singleton_flush_is_a_bare_request(self):
        simulator, proposer, batcher = build_batcher(BatchPolicy(max_batch=8, linger=0.01))
        request = make_request("c0", 1)
        batcher.enqueue(request)
        simulator.run(until=0.02)
        assert proposer.payloads[0][1] is request

    def test_duplicate_queued_request_ignored(self):
        _, proposer, batcher = build_batcher(BatchPolicy(max_batch=4, linger=5.0))
        request = make_request("c0", 1)
        assert batcher.enqueue(request)
        assert not batcher.enqueue(make_request("c0", 1))
        assert batcher.queued == 1

    def test_refused_proposal_keeps_requests_queued(self):
        simulator, proposer, batcher = build_batcher(BatchPolicy())
        proposer.refuse = True
        batcher.enqueue(make_request("c0", 1))
        assert batcher.queued == 1
        proposer.refuse = False
        batcher.enqueue(make_request("c0", 2))
        assert batcher.queued == 0
        assert len(proposer.proposed_requests()) == 2

    def test_pipeline_depth_blocks_until_commit(self):
        _, proposer, batcher = build_batcher(BatchPolicy(pipeline_depth=1))
        batcher.enqueue(make_request("c0", 1))
        batcher.enqueue(make_request("c0", 2))
        batcher.enqueue(make_request("c0", 3))
        assert len(proposer.payloads) == 1
        assert batcher.queued == 2
        batcher.on_slot_committed(1)
        # The freed slot flushes the backlog (as one batch-of-1 at a time
        # under max_batch=1).
        assert len(proposer.payloads) == 2
        batcher.on_slot_committed(2)
        assert len(proposer.payloads) == 3

    def test_pipeline_stall_accumulates_fuller_batches(self):
        _, proposer, batcher = build_batcher(BatchPolicy(max_batch=8, pipeline_depth=1))
        batcher.enqueue(make_request("c0", 1))
        for ts in range(2, 6):
            batcher.enqueue(make_request("c0", ts))
        assert len(proposer.payloads) == 1  # the stalled pipeline buffered 4
        batcher.on_slot_committed(1)
        assert len(proposer.payloads) == 2
        assert len(requests_of(proposer.payloads[1][1])) == 4

    def test_drain_returns_buffered_requests_in_order(self):
        _, proposer, batcher = build_batcher(BatchPolicy(max_batch=8, linger=5.0))
        requests = [make_request("c0", ts) for ts in range(1, 4)]
        for request in requests:
            batcher.enqueue(request)
        assert batcher.drain() == requests
        assert batcher.queued == 0

    def test_pause_buffers_and_resume_flushes(self):
        simulator, proposer, batcher = build_batcher(BatchPolicy(max_batch=4))
        batcher.pause()
        batcher.enqueue(make_request("c0", 1))
        batcher.enqueue(make_request("c0", 2))
        simulator.run(until=1.0)
        assert proposer.payloads == [] and batcher.queued == 2
        batcher.resume()
        assert batcher.queued == 0
        assert len(proposer.proposed_requests()) == 2

    def test_pause_disarms_linger_timer(self):
        simulator, proposer, batcher = build_batcher(BatchPolicy(max_batch=4, linger=0.01))
        batcher.enqueue(make_request("c0", 1))
        batcher.pause()
        simulator.run(until=0.05)
        assert proposer.payloads == []

    def test_forget_in_flight_below_reopens_pipeline(self):
        _, proposer, batcher = build_batcher(BatchPolicy(pipeline_depth=1))
        batcher.enqueue(make_request("c0", 1))
        batcher.enqueue(make_request("c0", 2))
        assert len(proposer.payloads) == 1  # pipeline full, seq 1 in flight
        # A snapshot adoption advanced the commit frontier past seq 1 without
        # a finalize_commit ever firing here.
        batcher.forget_in_flight_below(1)
        assert len(proposer.payloads) == 2

    def test_mean_batch_size_telemetry(self):
        _, proposer, batcher = build_batcher(BatchPolicy(max_batch=2))
        for ts in range(1, 5):
            batcher.enqueue(make_request("c0", ts))
        assert batcher.batches_proposed == 4  # linger=0 flushes every arrival
        assert batcher.mean_batch_size() == 1.0


# -- property-based: the exactly-once / in-order contract -----------------------

ARRIVALS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # client index
        st.integers(min_value=0, max_value=15),  # inter-arrival gap in ms
    ),
    min_size=1,
    max_size=40,
)

POLICIES = st.builds(
    BatchPolicy,
    max_batch=st.integers(min_value=1, max_value=8),
    linger=st.sampled_from([0.0, 0.001, 0.004]),
    pipeline_depth=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    adaptive=st.booleans(),
)


class TestBatcherProperties:
    @settings(max_examples=120, deadline=None)
    @given(arrivals=ARRIVALS, policy=POLICIES, commit_delay_ms=st.integers(1, 8))
    def test_no_request_dropped_duplicated_or_reordered(
        self, arrivals, policy, commit_delay_ms
    ):
        """Every arrival is proposed exactly once, in arrival order,
        for arbitrary arrival schedules, linger timeouts, and commit timing."""
        simulator = Simulator()
        proposer = RecordingProposer()
        batcher = Batcher(policy, timer_factory=simulator.timer, propose=proposer)

        # Commits free pipeline slots a fixed delay after each proposal.
        base_propose = proposer.__call__

        def propose_and_schedule_commit(payload):
            sequence = base_propose(payload)
            if sequence is not None:
                simulator.call_later(
                    commit_delay_ms / 1000.0,
                    lambda seq=sequence: batcher.on_slot_committed(seq),
                )
            return sequence

        batcher._propose = propose_and_schedule_commit

        issued = []
        clock = 0.0
        timestamps = {}
        for client_index, gap_ms in arrivals:
            clock += gap_ms / 1000.0
            client = f"client-{client_index}"
            timestamps[client] = timestamps.get(client, 0) + 1
            request = make_request(client, timestamps[client])
            issued.append(request)
            simulator.call_at(clock, lambda r=request: batcher.enqueue(r))

        simulator.run(until=clock + 5.0)

        proposed = proposer.proposed_requests()
        issued_keys = [(r.client_id, r.timestamp) for r in issued]
        proposed_keys = [(r.client_id, r.timestamp) for r in proposed]
        assert proposed_keys == issued_keys, (
            "proposal order must equal arrival order with no drops or duplicates"
        )
        assert batcher.queued == 0

    @settings(max_examples=60, deadline=None)
    @given(arrivals=ARRIVALS, policy=POLICIES)
    def test_batch_sizes_respect_policy(self, arrivals, policy):
        simulator = Simulator()
        proposer = RecordingProposer()
        batcher = Batcher(policy, timer_factory=simulator.timer, propose=proposer)
        clock = 0.0
        timestamps = {}
        for client_index, gap_ms in arrivals:
            clock += gap_ms / 1000.0
            client = f"client-{client_index}"
            timestamps[client] = timestamps.get(client, 0) + 1
            request = make_request(client, timestamps[client])
            simulator.call_at(clock, lambda r=request: batcher.enqueue(r))
        simulator.run(until=clock + 5.0)

        for sequence, payload in proposer.payloads:
            size = len(requests_of(payload))
            assert 1 <= size <= policy.max_batch
            if size == 1:
                assert not isinstance(payload, Batch), "batches of one stay bare requests"

    @settings(max_examples=60, deadline=None)
    @given(
        arrivals=ARRIVALS,
        policy=POLICIES,
        refuse_first=st.integers(min_value=0, max_value=5),
    )
    def test_refused_proposals_are_retried_not_lost(self, arrivals, policy, refuse_first):
        """Even when the first N proposals are refused (view change in
        progress), every request is eventually proposed exactly once."""
        simulator = Simulator()
        proposer = RecordingProposer()
        refusals = {"left": refuse_first}

        def flaky_propose(payload):
            if refusals["left"] > 0:
                refusals["left"] -= 1
                return None
            return proposer(payload)

        batcher = Batcher(policy, timer_factory=simulator.timer, propose=flaky_propose)

        clock = 0.0
        timestamps = {}
        issued = []
        for client_index, gap_ms in arrivals:
            clock += gap_ms / 1000.0
            client = f"client-{client_index}"
            timestamps[client] = timestamps.get(client, 0) + 1
            request = make_request(client, timestamps[client])
            issued.append(request)
            simulator.call_at(clock, lambda r=request: batcher.enqueue(r))
        simulator.run(until=clock + 5.0)
        # A trailing refusal can leave requests queued (the real replica pumps
        # again on the next commit or view change); drain and count them once.
        leftovers = batcher.drain()

        seen = [(r.client_id, r.timestamp) for r in proposer.proposed_requests()]
        seen += [(r.client_id, r.timestamp) for r in leftovers]
        assert sorted(seen) == sorted((r.client_id, r.timestamp) for r in issued)
        assert len(set(seen)) == len(seen)
