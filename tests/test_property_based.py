"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.crypto import KeyStore, digest
from repro.planner import (
    hybrid_network_size,
    hybrid_quorum_size,
    plan_with_explicit_failures,
    plan_with_failure_ratio,
)
from repro.planner.sizing import InfeasiblePlanError
from repro.sim import EventQueue, Simulator
from repro.smr import Counter, Operation, OrderedExecutor
from repro.smr.slots import SlotLog


class TestQuorumIntersectionProperties:
    @given(malicious=st.integers(0, 20), crash=st.integers(0, 20))
    def test_hybrid_quorums_intersect_in_a_correct_node(self, malicious, crash):
        """Any two quorums of size 2m+c+1 out of 3m+2c+1 share > m nodes.

        This is the core safety argument of Section 3.2: the intersection of
        any two quorums contains at least m+1 nodes, hence at least one
        non-faulty node.
        """
        network = hybrid_network_size(malicious, crash)
        quorum = hybrid_quorum_size(malicious, crash)
        intersection = 2 * quorum - network
        assert intersection >= malicious + 1

    @given(malicious=st.integers(0, 20), crash=st.integers(0, 20))
    def test_network_leaves_a_live_quorum_despite_faults(self, malicious, crash):
        """Even with every faulty node silent, a full quorum of correct nodes remains."""
        network = hybrid_network_size(malicious, crash)
        quorum = hybrid_quorum_size(malicious, crash)
        assert network - (malicious + crash) >= quorum


class TestPlannerProperties:
    @given(
        crash=st.integers(1, 6),
        alpha=st.floats(0.01, 0.32),
    )
    def test_ratio_plan_always_satisfies_network_constraint(self, crash, alpha):
        private = crash + 1  # the beneficial regime requires c < S < 2c+1
        if private >= 2 * crash + 1:
            return
        try:
            plan = plan_with_failure_ratio(private, crash, alpha)
        except InfeasiblePlanError:
            return
        worst_case_malicious = int(alpha * plan.public_nodes)
        assert plan.network_size >= 3 * worst_case_malicious + 2 * crash + 1

    @given(
        private=st.integers(0, 10),
        crash=st.integers(0, 5),
        public_malicious=st.integers(0, 5),
        public_crash=st.integers(0, 5),
    )
    def test_explicit_plan_is_exact_or_zero(self, private, crash, public_malicious, public_crash):
        plan = plan_with_explicit_failures(private, crash, public_malicious, public_crash)
        required = 3 * public_malicious + 2 * public_crash + 2 * crash + 1
        assert plan.network_size >= required or plan.public_nodes == 0


class TestExecutorProperties:
    @given(st.permutations(list(range(1, 12))))
    @settings(max_examples=50)
    def test_out_of_order_commits_execute_in_order(self, order):
        """Whatever order commits arrive in, execution is in sequence order."""
        executor = OrderedExecutor(Counter())
        for sequence in order:
            executor.commit(sequence, "client", sequence, Operation("add", (sequence,)))
        executed = [execution.sequence for execution in executor.executed]
        assert executed == sorted(executed)
        assert executor.last_executed == 11
        assert executor.state_machine.value == sum(range(1, 12))

    @given(
        st.lists(
            st.tuples(st.integers(1, 8), st.integers(1, 5)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_duplicate_client_requests_execute_once(self, submissions):
        """The same (client, timestamp) never mutates state twice."""
        executor = OrderedExecutor(Counter())
        sequence = 0
        seen = set()
        for client_index, timestamp in submissions:
            sequence += 1
            executor.commit(sequence, f"client-{client_index}", timestamp, Operation("add", (1,)))
            seen.add((f"client-{client_index}", timestamp))
        assert executor.state_machine.value == len(seen)


class TestDigestProperties:
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(st.integers(), st.text(max_size=16), st.booleans()),
            max_size=8,
        )
    )
    def test_digest_is_deterministic_and_order_insensitive(self, payload):
        reordered = dict(reversed(list(payload.items())))
        assert digest(payload) == digest(reordered)

    @given(st.text(max_size=64), st.text(max_size=64))
    def test_different_strings_rarely_collide(self, first, second):
        if first != second:
            assert digest(first) != digest(second)

    @given(st.binary(max_size=256))
    def test_signature_never_verifies_with_wrong_message(self, tampered):
        keystore = KeyStore()
        keystore.register("node")
        signer = keystore.signer_for("node")
        verifier = keystore.verifier()
        signature = signer.sign("the-real-message")
        if tampered != b"the-real-message":
            assert not verifier.verify(tampered, signature)


class TestDigestCacheProperties:
    """``digest_of`` with caching must equal the uncached canonical digest."""

    @given(
        kind=st.sampled_from(["put", "get", "noop", "scan"]),
        args=st.lists(st.text(max_size=12), max_size=4),
        payload=st.text(max_size=32),
        timestamp=st.integers(min_value=1, max_value=10**9),
        client=st.from_regex(r"client-[0-9]{1,4}", fullmatch=True),
    )
    def test_request_digest_cache_matches_cold_recompute(
        self, kind, args, payload, timestamp, client
    ):
        from repro.crypto.digest import digest_bytes, digest_of
        from repro.smr.messages import Request

        request = Request(
            operation=Operation(kind=kind, args=tuple(args), payload=payload),
            timestamp=timestamp,
            client_id=client,
        )
        warm = digest_of(request)
        assert warm == digest_of(request)  # cache hit
        assert warm == digest_bytes(request.signing_bytes())  # cold canonical form
        # An identical, freshly built message (cold cache) agrees.
        twin = Request(
            operation=Operation(kind=kind, args=tuple(args), payload=payload),
            timestamp=timestamp,
            client_id=client,
        )
        assert digest_of(twin) == warm

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4),
    )
    def test_batch_digest_cache_matches_cold_recompute(self, sizes):
        from repro.crypto.digest import digest_bytes, digest_of
        from repro.smr.messages import Batch, Request

        def build():
            return Batch(
                requests=[
                    Request(
                        operation=Operation("put", ("k", "v" * size)),
                        timestamp=index + 1,
                        client_id="client-0",
                    )
                    for index, size in enumerate(sizes)
                ]
            )

        warm_batch = build()
        warm = digest_of(warm_batch)
        assert warm == digest_bytes(warm_batch.signing_bytes())
        assert digest_of(build()) == warm  # cold twin agrees

    @given(
        entries=st.dictionaries(
            st.sampled_from(["checkpoint_digest", "x", "y", "z"]),
            st.integers(),
            max_size=4,
        )
    )
    def test_json_fallback_is_key_order_insensitive(self, entries):
        """Messages without signing_bytes canonicalize dicts order-free.

        This pins the dict-key-order guarantee for the JSON path that
        view-change messages (and any raw dict) still use.
        """
        from repro.crypto.digest import digest_of

        class RawMessage:
            def __init__(self, content):
                self._content = content

            def signing_content(self):
                return self._content

        forward = RawMessage(dict(entries))
        backward = RawMessage(dict(reversed(list(entries.items()))))
        assert digest_of(forward) == digest_of(backward) == digest(entries)


class TestWireCacheInvalidationProperties:
    """PR 3's invalidation contract, extended to the binary codec era: a
    message now freezes *two* derived caches — the content digest and the
    binary wire slice — and any content-field mutation (or copy) must drop
    both together, or a tampered message could keep digesting (or
    re-encoding) as its pre-mutation self."""

    @given(
        timestamp=st.integers(min_value=1, max_value=10**9),
        new_timestamp=st.integers(min_value=1, max_value=10**9),
        client=st.from_regex(r"client-[0-9]{1,3}", fullmatch=True),
    )
    def test_mutation_after_encoding_drops_digest_and_wire_slice(
        self, timestamp, new_timestamp, client
    ):
        from repro.crypto.digest import DIGEST_CACHE_ATTR, digest_of
        from repro.smr.messages import Request

        request = Request(
            operation=Operation("put", ("k", "v")), timestamp=timestamp, client_id=client
        )
        frame = request.wire_slice()  # freeze both caches
        digest_before = digest_of(request)
        assert DIGEST_CACHE_ATTR in request.__dict__
        assert "_wire_slice" in request.__dict__

        request.timestamp = new_timestamp
        assert DIGEST_CACHE_ATTR not in request.__dict__
        assert "_wire_slice" not in request.__dict__
        if new_timestamp != timestamp:
            assert request.wire_slice() != frame
            assert digest_of(request) != digest_before
        else:
            assert request.wire_slice() == frame
            assert digest_of(request) == digest_before

    @given(
        field=st.sampled_from(["view", "sequence", "digest", "mode", "replica_id"]),
        value=st.integers(min_value=0, max_value=10**6),
    )
    def test_every_vote_content_field_invalidates_both_caches(self, field, value):
        from repro.core.messages import Commit
        from repro.crypto.digest import DIGEST_CACHE_ATTR

        commit = Commit(view=0, sequence=1, digest="d" * 64, replica_id="r0", mode=0)
        commit.wire_slice()
        setattr(commit, field, str(value) if field in ("digest", "replica_id") else value)
        assert DIGEST_CACHE_ATTR not in commit.__dict__
        assert "_wire_slice" not in commit.__dict__

    @given(timestamp=st.integers(min_value=1, max_value=10**9))
    def test_copy_drops_both_caches_but_signature_assignment_does_not(self, timestamp):
        import copy

        from repro.crypto import KeyStore
        from repro.crypto.digest import DIGEST_CACHE_ATTR
        from repro.smr.messages import Request

        keystore = KeyStore()
        keystore.register("client")
        request = Request(
            operation=Operation("noop"), timestamp=timestamp, client_id="client"
        )
        request.sign(keystore.signer_for("client"))
        assert DIGEST_CACHE_ATTR in request.__dict__  # sign froze the digest
        request.wire_slice()

        # ``signature`` rides beside the signed frame: assigning it must
        # NOT drop the caches (sign() itself assigns it post-digest)...
        request.signature = request.signature
        assert DIGEST_CACHE_ATTR in request.__dict__
        assert "_wire_slice" in request.__dict__

        # ...but a copy (the first step of every byzantine twist) starts
        # with every derived cache cold.
        twin = copy.copy(request)
        assert DIGEST_CACHE_ATTR not in twin.__dict__
        assert "_wire_slice" not in twin.__dict__
        assert "_wire_size" not in twin.__dict__

    @given(payload=st.text(max_size=16))
    def test_decoded_twin_mutation_diverges_from_source_digest(self, payload):
        """Tamper-after-decode (the byzantine twist pattern) always yields
        a frame and digest that differ from the source message's."""
        from repro.crypto.digest import digest_of
        from repro.smr.messages import Request
        from repro.wire.codec import decode, encode

        request = Request(
            operation=Operation("put", ("key",), payload), timestamp=7, client_id="c"
        )
        twin = decode(encode(request))
        assert digest_of(twin) == digest_of(request)
        twin.operation = Operation("put", ("key",), payload + "-tampered")
        assert digest_of(twin) != digest_of(request)
        assert encode(twin) != encode(request)


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_events_fire_in_timestamp_order(self, delays):
        simulator = Simulator()
        fired = []
        for delay in delays:
            simulator.call_later(delay, lambda d=delay: fired.append(simulator.now))
        simulator.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_event_queue_pops_in_order(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, lambda: None)
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(popped)


class TestSlotLogProperties:
    @given(
        st.lists(st.integers(1, 200), min_size=1, max_size=60),
        st.integers(0, 150),
    )
    @settings(max_examples=50)
    def test_collect_below_never_loses_higher_slots(self, sequences, watermark):
        log = SlotLog()
        for sequence in sequences:
            log.slot(sequence).digest = f"digest-{sequence}"
        log.collect_below(watermark)
        assert all(sequence > watermark for sequence in log.sequences)
        expected_survivors = {s for s in sequences if s > watermark}
        assert set(log.sequences) == expected_survivors
        assert log.low_watermark >= min(watermark, log.low_watermark)

    @given(st.lists(st.tuples(st.integers(1, 30), st.sampled_from(["a", "b", "c"])), max_size=80))
    @settings(max_examples=50)
    def test_vote_counts_never_exceed_distinct_voters(self, votes):
        log = SlotLog()
        voters_per_slot = {}
        for sequence, voter in votes:
            slot = log.slot(sequence)
            slot.record_vote("accept", voter, message=None, digest=None)
            voters_per_slot.setdefault(sequence, set()).add(voter)
        for sequence, voters in voters_per_slot.items():
            assert log.slot(sequence).vote_count("accept") == len(voters)
