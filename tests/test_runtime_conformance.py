"""Fast-tier slice of the sim/aio/proc conformance oracle.

The full matrix (120 requests x 3 modes) runs in CI's dedicated
``runtime-conformance`` job via ``python -m repro.runtime.conformance``;
here each mode runs a reduced request count so the default test tier
still exercises real loopback TCP — both single-loop (aio) and
multiprocess (proc) — without dominating its wall time.
"""

import pytest

from repro.core import Mode
from repro.runtime.conformance import check_mode, run_aio, run_proc

REQUESTS = 40


@pytest.mark.parametrize("backend", ["aio", "proc"])
@pytest.mark.parametrize("mode", [Mode.LION, Mode.DOG, Mode.PEACOCK])
def test_sim_and_real_backends_commit_the_same_sequence(mode, backend):
    summary = check_mode(mode, num_requests=REQUESTS, window=8, max_batch=8,
                         timeout=30.0, backend=backend, num_procs=2)
    assert summary["common_prefix"] >= REQUESTS
    assert summary["sim_committed"] >= REQUESTS
    assert summary["real_committed"] >= REQUESTS


def test_aio_loopback_smoke():
    """The asyncio backend alone: real sockets, real timers, clean exit."""
    trace = run_aio(Mode.LION, num_requests=20, window=4, max_batch=4,
                    timeout=20.0)
    assert trace.completed == 20
    assert len(trace.commit_trace) >= 20
    # Exactly-once over the flattened trace.
    assert len(set(trace.commit_trace)) == len(trace.commit_trace)
    # Every issued timestamp got a cached reply digest.
    assert set(trace.reply_digests) == set(range(1, 21))


def test_proc_loopback_smoke():
    """The multiprocess backend alone: worker processes, harvested traces."""
    trace = run_proc(Mode.LION, num_requests=20, window=4, max_batch=4,
                     timeout=30.0, num_procs=2)
    assert trace.completed == 20
    assert len(trace.commit_trace) >= 20
    assert len(set(trace.commit_trace)) == len(trace.commit_trace)
    assert set(trace.reply_digests) == set(range(1, 21))


def test_aio_runtime_can_run_twice_in_one_process():
    """Server sockets and tasks from a finished run must not leak into or
    wedge a subsequent run (each ``run`` builds a fresh loop)."""
    first = run_aio(Mode.LION, num_requests=10, window=4, max_batch=4, timeout=20.0)
    second = run_aio(Mode.LION, num_requests=10, window=4, max_batch=4, timeout=20.0)
    assert first.completed == second.completed == 10
    assert first.commit_trace[:10] == second.commit_trace[:10]
