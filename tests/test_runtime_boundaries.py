"""Import-boundary enforcement for the runtime abstraction.

The whole point of ``repro.runtime`` is that the protocol core sees only
the narrow runtime interface, never a concrete backend.  These tests walk
the import statements (via ``ast``, so string mentions in docstrings and
comments don't count) of every module under ``repro/core`` and
``repro/smr`` and fail if any of them reaches into the simulator or the
simulated network directly.  ``repro/runtime/api.py`` must additionally
stay a dependency leaf: it is imported by everything, so it may import
nothing from ``repro`` at module scope.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules the protocol core must never import: the concrete simulator
#: package and the simulated network.  ``repro.net.node``/``repro.net.latency``
#: are allowed — the base Node class and latency models are backend-neutral.
FORBIDDEN_PREFIXES = ("repro.sim", "repro.net.network")

PROTOCOL_PACKAGES = ("core", "smr")


def iter_imports(path, top_level_only=False):
    """Yield (lineno, dotted_module) for every import in ``path``.

    For ``from X import Y`` the dotted module is ``X`` — good enough to
    prefix-match against forbidden packages.  Relative imports resolve
    against the file's package so ``from ..sim import x`` can't sneak by.
    With ``top_level_only`` only module-scope statements count, leaving
    deliberate function-scope lazy imports out of scope.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    parts = path.parts
    # Package path anchored at the last 'repro' directory, e.g. ('repro', 'core').
    anchor = max(i for i, part in enumerate(parts) if part == "repro")
    package_parts = parts[anchor:-1]
    nodes = tree.body if top_level_only else ast.walk(tree)
    for node in nodes:
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                yield node.lineno, node.module or ""
            else:
                base = package_parts[: len(package_parts) - node.level + 1]
                suffix = (node.module,) if node.module else ()
                yield node.lineno, ".".join(base + suffix)


def forbidden_imports(path):
    return [
        f"{path.relative_to(SRC.parent)}:{lineno} imports {module}"
        for lineno, module in iter_imports(path)
        if module.startswith(FORBIDDEN_PREFIXES)
    ]


class TestProtocolCoreIsBackendAgnostic:
    def test_no_module_under_core_or_smr_imports_a_backend(self):
        offenders = []
        for package in PROTOCOL_PACKAGES:
            for path in sorted((SRC / package).rglob("*.py")):
                offenders.extend(forbidden_imports(path))
        assert offenders == [], (
            "protocol modules must depend only on repro.runtime, never on "
            "the simulator or simulated network:\n" + "\n".join(offenders)
        )

    def test_the_walk_actually_sees_the_protocol_modules(self):
        # Guard against a refactor silently emptying the walk.
        seen = [
            path
            for package in PROTOCOL_PACKAGES
            for path in (SRC / package).rglob("*.py")
        ]
        assert len(seen) >= 10


class TestRuntimeApiIsALeaf:
    def test_api_module_imports_nothing_from_repro(self):
        offenders = [
            f"api.py:{lineno} imports {module}"
            for lineno, module in iter_imports(
                SRC / "runtime" / "api.py", top_level_only=True
            )
            if module.startswith("repro")
        ]
        assert offenders == [], (
            "repro.runtime.api must stay a dependency leaf (backend imports "
            "belong in as_runtime's lazy import):\n" + "\n".join(offenders)
        )


class TestProcBackendLayering:
    """The proc backend is a sibling of aio, not a protocol dependency.

    ``repro/runtime/proc.py`` may build on the api and reuse the aio
    runtime it embeds in each worker, but it must not reach into the
    protocol, cluster, or simulator layers at module scope — cluster
    wiring lives in ``repro.cluster.builders``, which imports proc, never
    the other way around.
    """

    ALLOWED_REPRO_IMPORTS = {"repro.runtime.api", "repro.runtime.aio"}

    def test_proc_module_imports_stay_within_the_runtime_layer(self):
        offenders = [
            f"proc.py:{lineno} imports {module}"
            for lineno, module in iter_imports(
                SRC / "runtime" / "proc.py", top_level_only=True
            )
            if module.startswith("repro") and module not in self.ALLOWED_REPRO_IMPORTS
        ]
        assert offenders == [], (
            "repro.runtime.proc may import only repro.runtime.api and "
            "repro.runtime.aio from repro at module scope:\n"
            + "\n".join(offenders)
        )


class TestDetectorDetects:
    def test_forbidden_import_is_caught(self, tmp_path):
        sample = tmp_path / "repro"
        (sample / "core").mkdir(parents=True)
        bad = sample / "core" / "bad.py"
        bad.write_text("from repro.sim.simulator import Simulator\n")
        # Re-point the resolver at the sample tree by mimicking its layout.
        tree_offenders = [
            module
            for _, module in iter_imports(bad)
            if module.startswith(FORBIDDEN_PREFIXES)
        ]
        assert tree_offenders == ["repro.sim.simulator"]
