"""Regression tests for the content-addressed digest/signature caches.

The hot-path overhaul freezes a message's *wire form* (canonical content,
digest, size) on first use.  Byzantine behaviour injection mutates copies
of live messages, so these tests pin the two invalidation guarantees the
caches must keep:

* ``copy.copy`` never inherits a cached digest — every ``make_*`` twist in
  :mod:`repro.faults.byzantine` starts with a copy, so a twisted message
  applied to a *warm* cache must still hash to its own (different) content;
* assigning any content field in place drops the cached forms, so even a
  twist that skipped the copy would be re-canonicalized.
"""

from __future__ import annotations

import copy

import pytest

from repro.core import messages as core_msgs
from repro.core.batching import BatchPolicy
from repro.core.modes import Mode
from repro.crypto.digest import digest, digest_bytes, digest_of
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import Signature
from repro.faults.byzantine import tampered_payload, tampered_request
from repro.smr.messages import Batch, Reply, Request
from repro.smr.replica import request_digest
from repro.smr.state_machine import Operation


@pytest.fixture
def keys():
    store = KeyStore()
    for node in ("p0", "r1", "byz", "client-0"):
        store.register(node)
    return store


def make_request(timestamp: int = 1, client: str = "client-0") -> Request:
    return Request(
        operation=Operation(kind="put", args=("k", "v"), payload="xy"),
        timestamp=timestamp,
        client_id=client,
    )


def make_batch(count: int = 4) -> Batch:
    return Batch(requests=[make_request(timestamp=i + 1) for i in range(count)])


class TestDigestCaching:
    def test_cached_digest_equals_uncached(self):
        # Request defines a flat signing_bytes canonical form.
        request = make_request()
        cold = digest_bytes(request.signing_bytes())
        warm = digest_of(request)
        assert warm == cold
        # Second call must serve the cache and agree.
        assert digest_of(request) == cold

    def test_cached_digest_equals_uncached_json_form(self):
        # ViewChange has no signing_bytes: the JSON canonicalization of its
        # signing content is the reference form.
        view_change = core_msgs.ViewChange(
            new_view=1, mode=1, replica_id="p0", checkpoint_sequence=0,
            checkpoint_digest="c" * 64,
        )
        cold = digest(view_change.signing_content())
        assert digest_of(view_change) == cold
        assert digest_of(view_change) == cold  # cache hit agrees

    def test_cache_is_object_local(self):
        first, second = make_request(1), make_request(2)
        assert digest_of(first) != digest_of(second)

    def test_copy_drops_cached_digest(self):
        request = make_request()
        warm = digest_of(request)  # warm the cache
        clone = copy.copy(request)
        assert "_content_digest" not in clone.__dict__
        clone.operation = Operation(kind="put", args=("k", "other"))
        assert digest_of(clone) != warm

    def test_in_place_mutation_invalidates(self):
        request = make_request()
        warm = digest_of(request)
        request.timestamp = 999
        assert digest_of(request) != warm

    def test_signature_assignment_keeps_content_cache(self, keys):
        request = make_request()
        request.sign(keys.signer_for("client-0"))
        warm = request.__dict__.get("_content_digest")
        assert warm is not None  # sign() warmed it
        request.signature = None
        assert request.__dict__.get("_content_digest") == warm

    def test_wire_size_cache_dropped_on_copy_and_mutation(self):
        batch = make_batch()
        size = batch.cached_wire_size()
        clone = copy.copy(batch)
        assert "_wire_size" not in clone.__dict__
        clone.requests = batch.requests[:1]
        assert clone.cached_wire_size() < size


class TestByzantineTwistsAgainstWarmCaches:
    """Every make_* twist must produce a digest mismatch despite warm caches."""

    def test_tampered_request_differs_with_warm_cache(self):
        request = make_request()
        warm = request_digest(request)
        twisted = tampered_request(request)
        assert request_digest(twisted) != warm
        # The original's cache is untouched and still correct.
        assert request_digest(request) == warm == digest_bytes(request.signing_bytes())

    def test_tampered_batch_differs_with_warm_cache(self):
        batch = make_batch()
        warm = request_digest(batch)
        for inner in batch.requests:
            digest_of(inner)  # warm every inner request too
        twisted = tampered_payload(batch)
        assert request_digest(twisted) != warm
        # Untampered inner requests may share digests; the tampered one must not.
        assert digest_of(twisted.requests[0]) != digest_of(batch.requests[0])

    @pytest.mark.parametrize("mode", [Mode.LION, Mode.DOG, Mode.PEACOCK])
    def test_equivocating_copy_is_self_consistent_but_conflicting(self, keys, mode):
        """The conflicting_copy logic of make_equivocating, against warm caches."""
        batch = make_batch()
        ordering_cls = core_msgs.PrePrepare if mode is Mode.PEACOCK else core_msgs.Prepare
        honest = ordering_cls(
            view=0, sequence=1, digest=request_digest(batch), request=batch, mode=int(mode)
        )
        honest.sign(keys.signer_for("byz"))
        assert honest.verify(keys.verifier(), expected_signer="byz")

        # Exactly what make_equivocating's conflicting_copy does.
        twisted = copy.copy(honest)
        twisted.request = tampered_payload(honest.request)
        twisted.digest = request_digest(twisted.request)
        twisted.sign(keys.signer_for("byz"))

        # Self-consistent: a correct replica's checks pass in isolation ...
        assert twisted.digest == request_digest(twisted.request)
        assert twisted.verify(keys.verifier(), expected_signer="byz")
        # ... yet it genuinely conflicts with the honest proposal.
        assert twisted.digest != honest.digest
        # And the honest message's cached forms were not disturbed.
        assert honest.digest == request_digest(honest.request)
        assert honest.verify(keys.verifier(), expected_signer="byz")

    def test_lying_reply_with_warm_cache_diverges(self, keys):
        honest = Reply(
            mode=1, view=0, timestamp=1, client_id="client-0", replica_id="byz",
            result={"ok": True, "value": 1},
        )
        honest.sign(keys.signer_for("byz"))
        warm_key = honest.result_digest()

        lie = copy.copy(honest)
        lie.result = {"ok": False, "value": "forged-by-byz"}
        lie.sign(keys.signer_for("byz"))
        # The lie verifies (the Byzantine replica signs its own lie) but the
        # result digest clients vote on is different — quorum matching wins.
        assert lie.verify(keys.verifier(), expected_signer="byz")
        assert lie.result_digest() != warm_key

    def test_corrupt_signature_with_warm_verify_cache_is_rejected(self, keys):
        message = core_msgs.Commit(
            view=0, sequence=1, digest="d" * 64, replica_id="byz", mode=1
        )
        message.sign(keys.signer_for("byz"))
        # Warm both the digest cache and the signature's verify memo.
        assert message.verify(keys.verifier(), expected_signer="byz")

        twisted = copy.copy(message)
        twisted.signature = Signature(
            signer_id=message.signature.signer_id,
            payload_digest=message.signature.payload_digest,
            tag="0" * 64,
        )
        assert not twisted.verify(keys.verifier(), expected_signer="byz")
        # The original is still accepted.
        assert message.verify(keys.verifier(), expected_signer="byz")

    def test_forged_signature_never_verifies(self, keys):
        request = make_request()
        forged = keys.signer_for("byz").forge(request.signing_content(), "p0")
        request.signature = forged
        assert not request.verify(keys.verifier(), expected_signer="p0")


class TestResultDigestMemo:
    def test_equal_hashing_but_distinct_canonical_values_do_not_collide(self):
        """(1,) == (True,) hash-equal but canonicalize differently; the memo
        must not conflate results embedding them."""
        from repro.smr.messages import _result_digest

        first = _result_digest({"ok": True, "value": (1,)})
        second = _result_digest({"ok": True, "value": (True,)})
        assert first == digest({"ok": True, "value": (1,)})
        assert second == digest({"ok": True, "value": (True,)})
        assert first != second

    def test_scalar_bool_vs_int_values_do_not_collide(self):
        from repro.smr.messages import _result_digest

        assert _result_digest({"ok": 1}) != _result_digest({"ok": True})
        assert _result_digest({"ok": 1}) == digest({"ok": 1})

    def test_signed_zero_floats_do_not_collide(self):
        from repro.smr.messages import _result_digest

        assert _result_digest({"v": 0.0}) == digest({"v": 0.0})
        assert _result_digest({"v": -0.0}) == digest({"v": -0.0})
        assert _result_digest({"v": 0.0}) != _result_digest({"v": -0.0})


class TestForcedSlotBookkeeping:
    def test_force_superseding_payload_rerecords_assignments(self):
        """A certified payload that force-replaces a stale tentative one must
        re-record known-request and sequence-assignment entries, even within
        the same assignment generation (regression for the bookkept-
        generation fast path)."""
        from repro.cluster import build_seemore
        from repro.smr.replica import request_digest as rd

        deployment = build_seemore(mode=Mode.LION, num_clients=1)
        replica = next(iter(deployment.replicas.values()))

        tentative = make_request(timestamp=1, client="client-A")
        certified = make_request(timestamp=2, client="client-B")
        replica.prepare_slot(1, rd(tentative), tentative, None)
        assert replica.already_assigned(tentative)

        replica.prepare_slot(1, rd(certified), certified, None, force=True)
        assert replica.already_assigned(certified)
        assert replica.known_request("client-B", 2) is certified


@pytest.mark.integration
@pytest.mark.parametrize("mode", [Mode.LION, Mode.DOG, Mode.PEACOCK])
@pytest.mark.parametrize("strategy", ["equivocate", "lie", "corrupt"])
def test_byzantine_strategy_safe_with_digest_cache_and_batching(mode, strategy):
    """End-to-end: each twist, each mode, max_batch > 1, caches enabled.

    Runs long enough for caches to be warm on every replica before the twist
    fires, then asserts the PR 2 invariants (no fork, no forged results)
    still hold.
    """
    from repro.scenarios.engine import Scenario, run_scenario
    from repro.scenarios.events import Byzantine

    scenario = Scenario(
        name=f"cache-{strategy}",
        description="byzantine twist against warm digest caches",
        batch_policy=BatchPolicy(max_batch=4, linger=0.001),
        client_window=2,
        events=(Byzantine(at=0.15, target="public-primary", strategy=strategy),),
        duration=0.5,
        settle=0.15,
        min_completed=10,
    )
    run_scenario(scenario, mode).assert_ok()
