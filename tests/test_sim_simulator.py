"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Clock, EventQueue, Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(-1.0)

    def test_advance_forward(self):
        clock = Clock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_backwards_rejected(self):
        clock = Clock(2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)

    def test_advance_to_same_time_allowed(self):
        clock = Clock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while queue:
            queue.pop().action()
        assert fired == ["a", "b", "c"]

    def test_fifo_within_same_time(self):
        queue = EventQueue()
        fired = []
        for name in "abcde":
            queue.push(1.0, lambda n=name: fired.append(n))
        while queue:
            queue.pop().action()
        assert fired == list("abcde")

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        queue.note_cancelled()
        popped = queue.pop()
        assert popped.time == 2.0

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        event.cancel()
        queue.note_cancelled()
        assert queue.peek_time() == 5.0

    def test_len_tracks_live_events(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        event = queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        queue.note_cancelled()
        assert len(queue) == 1

    def test_empty_queue_pops_none(self):
        assert EventQueue().pop() is None
        assert EventQueue().peek_time() is None


class TestSimulator:
    def test_call_later_advances_clock(self):
        sim = Simulator()
        fired_at = []
        sim.call_later(1.5, lambda: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [1.5]
        assert sim.now == 1.5

    def test_call_at_absolute_time(self):
        sim = Simulator()
        fired_at = []
        sim.call_at(4.0, lambda: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [4.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.call_later(-1.0, lambda: None)

    def test_call_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.call_later(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.call_at(1.0, lambda: None)

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.call_later(1.0, lambda: fired.append(1))
        sim.call_later(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_run_until_executes_events_exactly_at_until(self):
        sim = Simulator()
        fired = []
        sim.call_later(5.0, lambda: fired.append(5))
        sim.run(until=5.0)
        assert fired == [5]

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                sim.call_later(1.0, lambda: chain(depth + 1))

        sim.call_later(1.0, lambda: chain(1))
        sim.run()
        assert fired == [1, 2, 3, 4, 5]
        assert sim.now == 5.0

    def test_cancel_scheduled_event(self):
        sim = Simulator()
        fired = []
        event = sim.call_later(1.0, lambda: fired.append("x"))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_max_events_limits_processing(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.call_later(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert len(fired) == 3

    def test_stop_halts_loop(self):
        sim = Simulator()
        fired = []
        sim.call_later(1.0, lambda: (fired.append(1), sim.stop()))
        sim.call_later(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [(1, None)] or fired == [1]  # tuple from lambda, value irrelevant
        assert sim.pending_events == 1

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.call_later(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_deterministic_tie_break(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.call_later(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_run_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0


class TestTimer:
    def test_timer_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]
        assert not timer.active

    def test_timer_stop_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = sim.timer(lambda: fired.append("x"))
        timer.start(2.0)
        timer.stop()
        sim.run()
        assert fired == []

    def test_timer_restart_resets_deadline(self):
        sim = Simulator()
        fired = []
        timer = sim.timer(lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.call_later(1.0, lambda: timer.restart(5.0))
        sim.run()
        assert fired == [6.0]

    def test_timer_active_flag(self):
        sim = Simulator()
        timer = sim.timer(lambda: None)
        assert not timer.active
        timer.start(1.0)
        assert timer.active
        timer.stop()
        assert not timer.active

    def test_stopping_inactive_timer_is_noop(self):
        sim = Simulator()
        timer = sim.timer(lambda: None)
        timer.stop()
        assert not timer.active
