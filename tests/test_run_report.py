"""Every result type speaks the RunReport protocol."""

import pytest

from repro.analysis import format_run_report
from repro.cluster.builders import build_seemore
from repro.cluster.runner import (
    OpenLoopRunResult,
    RunReport,
    RunResult,
    ShardedRunResult,
    run_deployment,
)
from repro.runtime.proc import ProcResult
from repro.workload.metrics import LatencySummary


def _latency():
    return LatencySummary.of([0.01, 0.02, 0.03])


def _run_result(**overrides):
    kwargs = dict(
        protocol="seemore-lion",
        clients=2,
        duration=1.0,
        completed=100,
        throughput=100.0,
        latency=_latency(),
        client_timeouts=0,
        safety_violations=0,
    )
    kwargs.update(overrides)
    return RunResult(**kwargs)


def _sharded_result():
    return ShardedRunResult(
        aggregate=_run_result(protocol="seemore-sharded"),
        per_shard=(),
        transactions={"started": 5, "committed": 4, "aborted": 1},
        atomicity_violations=0,
    )


def _open_loop_result():
    return OpenLoopRunResult(
        protocol="seemore-lion",
        duration=1.0,
        offered=500,
        completed=300,
        dropped=100,
        shed=100,
        busy_rejects=250,
        throughput=300.0,
        latency=_latency(),
        safety_violations=0,
    )


def _proc_result():
    return ProcResult(
        met=True,
        wall_seconds=1.5,
        harvests={"client": {"completed": 42}},
        stats={"w0": {"nodes": {"r0": {"busy_time": 0.5}}}},
        deaths=[],
        exitcodes={"w0": 0},
        errors=[],
    )


ALL_REPORTS = {
    "run": _run_result,
    "sharded": _sharded_result,
    "openloop": _open_loop_result,
    "proc": _proc_result,
}


class TestProtocolConformance:
    @pytest.mark.parametrize("kind", sorted(ALL_REPORTS))
    def test_isinstance_of_run_report(self, kind):
        assert isinstance(ALL_REPORTS[kind](), RunReport)

    @pytest.mark.parametrize("kind", sorted(ALL_REPORTS))
    def test_report_row_is_flat(self, kind):
        row = ALL_REPORTS[kind]().report_row()
        assert isinstance(row, dict) and row
        assert all(
            value is None or isinstance(value, (str, int, float, bool))
            for value in row.values()
        )

    @pytest.mark.parametrize("kind", sorted(ALL_REPORTS))
    def test_node_stats_is_dict(self, kind):
        assert isinstance(ALL_REPORTS[kind]().node_stats(), dict)

    def test_committed_aliases(self):
        assert _run_result().committed == 100
        assert _sharded_result().committed == 100
        assert _open_loop_result().committed == 300
        assert _proc_result().committed == 42

    def test_violation_counts(self):
        assert _run_result(safety_violations=2).violation_count == 2
        assert _proc_result().violation_count == 0
        sharded = ShardedRunResult(
            aggregate=_run_result(safety_violations=1),
            per_shard=(),
            transactions={},
            atomicity_violations=2,
        )
        assert sharded.violation_count == 3

    def test_open_loop_slo_violation_counts(self):
        from repro.workload.slo import SloEvaluation, SloSpec

        spec = SloSpec(bound=0.05)
        bad = SloEvaluation(spec=spec, bins=4, violating_bins=2, worst=0.2)
        result = _open_loop_result()
        assert result.violation_count == 0
        import dataclasses

        assert dataclasses.replace(result, slo=bad).violation_count == 1


class TestFormatRunReport:
    def test_formats_mixed_reports(self):
        text = format_run_report([_run_result(), _proc_result()])
        assert "protocol" in text
        assert "proc" in text

    def test_flags_violations(self):
        text = format_run_report([_run_result(safety_violations=3)])
        assert "VIOLATIONS" in text

    def test_empty(self):
        assert "(no results)" in format_run_report([])


class TestLiveRunPopulatesReport:
    @pytest.mark.integration
    def test_run_deployment_fills_run_report_fields(self):
        deployment = build_seemore(num_clients=2, seed=3)
        result = run_deployment(deployment, duration=0.3, warmup=0.1)
        assert isinstance(result, RunReport)
        assert result.metrics_collector is deployment.metrics
        stats = result.node_stats()
        assert stats, "node summaries should be captured"
        assert any("busy_rejects_sent" in summary for summary in stats.values())
