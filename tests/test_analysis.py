"""Unit tests for the Table 1 analytic comparison and report formatting."""

import pytest

from repro.analysis import (
    comparison_table,
    format_results_table,
    format_series,
    format_timeline,
    messages_per_request,
    profile_for,
)


class TestProfiles:
    def test_table1_symbolic_rows(self):
        lion = profile_for("seemore-lion")
        assert lion.phases == 2
        assert lion.message_complexity == "O(n)"
        assert lion.receiving_network == "3m+2c+1"
        assert lion.quorum_size == "2m+c+1"

        dog = profile_for("seemore-dog")
        assert dog.phases == 2
        assert dog.message_complexity == "O(n^2)"
        assert dog.receiving_network == "3m+1"

        peacock = profile_for("seemore-peacock")
        assert peacock.phases == 3

        paxos = profile_for("cft")
        assert paxos.phases == 2 and paxos.quorum_size == "f+1"

        pbft = profile_for("bft")
        assert pbft.phases == 3 and pbft.quorum_size == "2f+1"

        upright = profile_for("s-upright")
        assert upright.phases == 2 and upright.quorum_size == "2m+c+1"

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            profile_for("raft")

    def test_comparison_table_concrete_values(self):
        rows = {row["protocol"]: row for row in comparison_table(1, 1)}
        assert rows["Lion"]["receiving_network"].endswith("= 6")
        assert rows["Lion"]["quorum_size"].endswith("= 4")
        assert rows["Dog"]["receiving_network"].endswith("= 4")
        assert rows["Paxos"]["receiving_network"].endswith("= 5")
        assert rows["PBFT"]["receiving_network"].endswith("= 7")
        assert rows["UpRight"]["receiving_network"].endswith("= 6")

    def test_comparison_table_other_mix(self):
        rows = {row["protocol"]: row for row in comparison_table(3, 1)}
        assert rows["Lion"]["receiving_network"].endswith("= 10")
        assert rows["PBFT"]["receiving_network"].endswith("= 13")
        assert rows["Paxos"]["receiving_network"].endswith("= 9")


class TestMessageCounts:
    def test_lion_is_linear(self):
        # Lion exchanges 3N messages (Section 5.1).
        assert messages_per_request("seemore-lion", 1, 1) == 3 * 6

    def test_dog_matches_paper_formula(self):
        # N + (3m+1)^2 + (3m+1)*N  (Section 5.2).
        n, proxies = 6, 4
        assert messages_per_request("seemore-dog", 1, 1) == n + proxies**2 + proxies * n

    def test_peacock_matches_paper_formula(self):
        # N + 2*(3m+1)^2 + (1+S)*(3m+1)  (Section 5.3).
        n, proxies, s = 6, 4, 2
        expected = n + 2 * proxies**2 + (1 + s) * proxies
        assert messages_per_request("seemore-peacock", 1, 1) == expected

    def test_lion_fewer_messages_than_dog_and_peacock(self):
        for c, m in [(1, 1), (2, 2), (1, 3), (3, 1)]:
            lion = messages_per_request("seemore-lion", c, m)
            dog = messages_per_request("seemore-dog", c, m)
            peacock = messages_per_request("seemore-peacock", c, m)
            bft = messages_per_request("bft", c, m)
            assert lion < dog <= peacock
            assert peacock < bft

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            messages_per_request("raft", 1, 1)


class TestReportFormatting:
    def test_results_table_alignment(self):
        rows = [
            {"protocol": "lion", "throughput": 12.5},
            {"protocol": "cft", "throughput": 13.75},
        ]
        text = format_results_table(rows)
        lines = text.splitlines()
        assert "protocol" in lines[0]
        assert len(lines) == 4

    def test_results_table_empty(self):
        assert format_results_table([]) == "(no results)"

    def test_results_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_results_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_series_formatting(self):
        text = format_series("fig", [(1.0, 2.0), (3.0, 4.0)], x_label="tput", y_label="lat")
        assert "fig" in text
        assert text.count("tput=") == 2

    def test_timeline_formatting(self):
        text = format_timeline("fig4", [(0.0, 100.0), (0.01, 0.0)])
        assert "fig4" in text
        assert "t=" in text
