"""Byzantine strategies under request batching.

PR 1 moved slot payloads from bare requests to ``Batch`` objects, which
silently broke ``make_equivocating`` (it tampered a ``.operation`` that a
batch does not have, producing a twist whose digest *matched* the
original, i.e. no equivocation at all).  These tests pin the fixed
behaviour:

* the tampered payload of a batch differs by digest and stays
  self-consistent (digest == D(payload)), so receivers accept whichever
  proposal arrives first and detect the conflict on the slot;
* a correct Peacock proxy refuses the second, conflicting assignment;
* every Byzantine strategy (equivocate / lie / corrupt) is absorbed in
  all three modes while batching is active.
"""

import pytest

from repro.cluster import build_seemore
from repro.core import BatchPolicy, Mode
from repro.core import messages as msgs
from repro.faults import make_byzantine, make_equivocating
from repro.faults.byzantine import tampered_payload
from repro.smr.ledger import assert_ledgers_consistent
from repro.smr.messages import Batch, Request
from repro.smr.replica import request_digest
from repro.smr.state_machine import Operation
from repro.workload import microbenchmark

BATCHING = BatchPolicy(max_batch=4, linger=0.001)


def build(mode, **kwargs):
    return build_seemore(
        crash_tolerance=1,
        byzantine_tolerance=1,
        mode=mode,
        workload=microbenchmark("0/0"),
        num_clients=kwargs.pop("num_clients", 2),
        seed=kwargs.pop("seed", 21),
        client_timeout=kwargs.pop("client_timeout", 0.1),
        batch_policy=kwargs.pop("batch_policy", BATCHING),
        client_window=kwargs.pop("client_window", 4),
        **kwargs,
    )


def signed_batch(deployment, count=3):
    keystore = deployment.keystore
    requests = []
    for index in range(count):
        client_id = f"batch-client-{index}"
        keystore.register(client_id)
        request = Request(
            operation=Operation("noop", (), ""), timestamp=index + 1, client_id=client_id
        )
        request.sign(keystore.signer_for(client_id))
        requests.append(request)
    return Batch(requests=requests)


class TestTamperedPayload:
    def test_bare_request_twist_changes_digest(self):
        request = Request(operation=Operation("noop"), timestamp=1, client_id="c")
        twisted = tampered_payload(request)
        assert request_digest(twisted) != request_digest(request)

    def test_batch_twist_changes_batch_digest(self):
        deployment = build(Mode.LION)
        batch = signed_batch(deployment)
        twisted = tampered_payload(batch)
        assert isinstance(twisted, Batch)
        assert len(twisted) == len(batch)
        assert request_digest(twisted) != request_digest(batch)

    def test_original_batch_is_not_mutated(self):
        deployment = build(Mode.LION)
        batch = signed_batch(deployment)
        digest_before = request_digest(batch)
        tampered_payload(batch)
        assert request_digest(batch) == digest_before
        assert all(request.operation.kind == "noop" for request in batch)


class TestEquivocationUnderBatching:
    """The regression the fault-scenario work exposed (ISSUE 2)."""

    def test_multicast_emits_digest_divergent_self_consistent_proposals(self):
        deployment = build(Mode.PEACOCK)
        config = deployment.extras["config"]
        primary = deployment.replicas[config.primary_of_view(0, Mode.PEACOCK)]

        captured = []
        primary.multicast = lambda destinations, payload: captured.append(
            (list(destinations), payload)
        )
        make_equivocating(primary)

        batch = signed_batch(deployment)
        preprepare = msgs.PrePrepare(
            view=0,
            sequence=1,
            digest=request_digest(batch),
            request=batch,
            mode=int(Mode.PEACOCK),
        )
        preprepare.sign(primary.signer)
        primary.multicast(primary.other_replicas(), preprepare)

        assert len(captured) == 2, "both halves of the group must get a proposal"
        (_, honest), (_, twisted) = captured
        assert honest.digest != twisted.digest, "the proposals must genuinely conflict"
        for message in (honest, twisted):
            # Self-consistent: receivers that check D(µ) against the carried
            # payload accept each proposal in isolation...
            assert message.digest == request_digest(message.request)
            # ...and the signature is the equivocator's own, intact.
            assert message.verify(primary.verifier, expected_signer=primary.node_id)
        assert isinstance(twisted.request, Batch)
        assert len(twisted.request) == len(batch)

    def test_correct_proxy_rejects_second_assignment(self):
        deployment = build(Mode.PEACOCK)
        config = deployment.extras["config"]
        primary = deployment.replicas[config.primary_of_view(0, Mode.PEACOCK)]
        proxy = deployment.replicas[
            next(r for r in config.public_replicas if r != primary.node_id)
        ]

        batch = signed_batch(deployment)
        honest = msgs.PrePrepare(
            view=0, sequence=1, digest=request_digest(batch), request=batch,
            mode=int(Mode.PEACOCK),
        )
        honest.sign(primary.signer)
        twisted_batch = tampered_payload(batch)
        twisted = msgs.PrePrepare(
            view=0, sequence=1, digest=request_digest(twisted_batch),
            request=twisted_batch, mode=int(Mode.PEACOCK),
        )
        twisted.sign(primary.signer)

        proxy.strategy.on_preprepare(proxy, primary.node_id, honest)
        slot = proxy.slots.slot(1)
        assert slot.digest == honest.digest

        proxy.strategy.on_preprepare(proxy, primary.node_id, twisted)
        assert slot.digest == honest.digest, "the conflicting assignment must be refused"
        assert slot.request is batch

    @pytest.mark.integration
    def test_equivocating_peacock_primary_with_batches_is_removed(self):
        deployment = build(Mode.PEACOCK)
        config = deployment.extras["config"]
        primary = config.primary_of_view(0, Mode.PEACOCK)
        simulator = deployment.simulator
        deployment.start_clients()
        simulator.run(until=0.12)
        make_byzantine(deployment, primary, "equivocate")
        simulator.run(until=1.0)
        deployment.stop_clients()
        assert_ledgers_consistent(deployment.correct_ledgers())
        assert max(r.view for r in deployment.correct_replicas()) >= 1, (
            "a view change must remove the equivocating primary"
        )


@pytest.mark.integration
@pytest.mark.parametrize(
    "mode", [Mode.LION, Mode.DOG, Mode.PEACOCK], ids=lambda mode: mode.name.lower()
)
@pytest.mark.parametrize("strategy", ["equivocate", "lie", "corrupt"])
def test_byzantine_backup_tolerated_under_batching(mode, strategy):
    """All strategies, all modes, with multi-request batches in flight."""
    deployment = build(mode, client_window=2)
    config = deployment.extras["config"]
    primary = config.primary_of_view(0, mode)
    victim = next(r for r in config.public_replicas if r != primary)
    simulator = deployment.simulator
    deployment.start_clients()
    simulator.run(until=0.1)
    before = deployment.metrics.completed
    make_byzantine(deployment, victim, strategy)
    simulator.run(until=0.5)
    deployment.stop_clients()

    assert deployment.metrics.completed > before + 10, (
        f"{mode.name} must keep completing requests with a {strategy} replica"
    )
    assert_ledgers_consistent(deployment.correct_ledgers())
    batch_sizes = [
        size
        for replica in deployment.correct_replicas()
        for size in replica.batcher.proposed_batch_sizes
    ]
    assert any(size > 1 for size in batch_sizes), "batching must actually have engaged"
