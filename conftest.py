"""Repository-wide pytest configuration.

Everything under ``benchmarks/`` reproduces a table or figure of the paper
by running minutes of simulated workload, so those tests are auto-marked
``slow`` (and ``integration``): the fast tier — ``pytest -m "not slow"`` —
skips them while plain ``pytest`` still runs the full matrix.
"""

import pathlib

import pytest

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - hypothesis is a test-only dependency
    pass
else:
    # CI runs property suites with ``--hypothesis-profile=ci``: shared
    # runners have noisy wall clocks, so the per-example deadline is off
    # (one slow example must not flake the codec-differential gate) while
    # the example budget stays high enough to exercise the frame space.
    settings.register_profile(
        "ci",
        deadline=None,
        max_examples=100,
        suppress_health_check=[HealthCheck.too_slow],
    )

_BENCHMARKS_DIR = pathlib.Path(__file__).parent / "benchmarks"


def pytest_collection_modifyitems(config, items):
    for item in items:
        try:
            in_benchmarks = _BENCHMARKS_DIR in pathlib.Path(str(item.fspath)).parents
        except (OSError, ValueError):  # pragma: no cover - exotic collection nodes
            in_benchmarks = False
        if in_benchmarks:
            item.add_marker(pytest.mark.slow)
            item.add_marker(pytest.mark.integration)
