"""Ablation: when is the Peacock mode worth it? (cross-cloud latency sweep).

Section 5.3 motivates the Peacock mode for deployments where "there is a
large network distance between the private and the public cloud and the
latency of having one more phase of communication within the public cloud
is less than the latency of exchanging messages between the two clouds".

This ablation sweeps the one-way cross-cloud latency while keeping both
clouds internally fast, and reports the mean request latency of the Lion
mode (which must cross between the clouds every phase) against the Peacock
mode (which stays inside the public cloud).  The crossover demonstrates the
design choice behind the third mode.
"""

import pytest

from repro.analysis import format_results_table
from repro.cluster import build_seemore, run_deployment
from repro.core import Mode
from repro.workload import Workload

CROSS_CLOUD_LATENCIES = (0.0002, 0.002, 0.01, 0.03)


def latency_for(mode: Mode, cross_cloud_latency: float) -> float:
    deployment = build_seemore(
        crash_tolerance=1,
        byzantine_tolerance=1,
        mode=mode,
        workload=Workload.build("0/0"),
        num_clients=2,
        seed=70,
        cross_cloud_latency=cross_cloud_latency,
        client_timeout=0.5,
    )
    result = run_deployment(deployment, duration=0.4, warmup=0.1)
    return result.latency.mean


@pytest.mark.benchmark(group="ablation")
def test_ablation_cross_cloud_latency(benchmark, report):
    def sweep():
        rows = []
        for cross in CROSS_CLOUD_LATENCIES:
            lion = latency_for(Mode.LION, cross)
            peacock = latency_for(Mode.PEACOCK, cross)
            rows.append(
                {
                    "cross_cloud_latency_ms": cross * 1000,
                    "lion_latency_ms": round(lion * 1000, 3),
                    "peacock_latency_ms": round(peacock * 1000, 3),
                    "winner": "peacock" if peacock < lion else "lion",
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report.section("Ablation: Lion vs Peacock as the cross-cloud latency grows (c=1, m=1)")
    report.block(format_results_table(rows))

    # Co-located clouds: the Lion mode's two phases win.
    assert rows[0]["winner"] == "lion"
    # Distant clouds: the Peacock mode's public-cloud-only agreement wins.
    assert rows[-1]["winner"] == "peacock"
    # Lion latency grows with the cross-cloud distance; Peacock stays flat
    # (its client still pays the client link, but agreement does not cross).
    assert rows[-1]["lion_latency_ms"] > rows[0]["lion_latency_ms"] * 3
    assert rows[-1]["peacock_latency_ms"] < rows[-1]["lion_latency_ms"]
