"""Table 1: analytic comparison of fault-tolerant protocols.

Regenerates the paper's Table 1 (communication phases, message complexity,
receiving network size, quorum size) for the base configuration c = m = 1
and for each of the Figure 2 scenarios, directly from the protocol
definitions in :mod:`repro.analysis.comparison`.
"""

import pytest

from repro.analysis import comparison_table, format_results_table, profile_for


SCENARIOS = [(1, 1), (2, 2), (1, 3), (3, 1)]


@pytest.mark.benchmark(group="table1")
def test_table1_protocol_comparison(benchmark, report):
    def build_tables():
        return {scenario: comparison_table(*scenario) for scenario in SCENARIOS}

    tables = benchmark.pedantic(build_tables, rounds=1, iterations=1)

    report.section("Table 1: comparison of fault-tolerant protocols")
    for (crash, byz), rows in tables.items():
        report.line(f"\n-- c={crash}, m={byz} (CFT/BFT sized for f = c+m = {crash + byz}) --")
        report.block(format_results_table(rows))

    # Structural assertions straight from Table 1 of the paper.
    lion, dog, peacock = (
        profile_for("seemore-lion"),
        profile_for("seemore-dog"),
        profile_for("seemore-peacock"),
    )
    paxos, pbft, upright = profile_for("cft"), profile_for("bft"), profile_for("s-upright")

    assert lion.phases == paxos.phases == dog.phases == upright.phases == 2
    assert peacock.phases == pbft.phases == 3
    assert lion.message_complexity == paxos.message_complexity == "O(n)"
    assert dog.message_complexity == peacock.message_complexity == "O(n^2)"
    assert lion.receiving_network == upright.receiving_network == "3m+2c+1"
    assert dog.receiving_network == peacock.receiving_network == "3m+1"
    assert lion.quorum_size == upright.quorum_size == "2m+c+1"
    assert dog.quorum_size == peacock.quorum_size == "2m+1"

    # Concrete sizes for the base case c=m=1 must match the paper's Figure 2(a)
    # caption: SeeMoRe/S-UpRight = 6, CFT = 5, BFT = 7.
    base = {row["protocol"]: row for row in tables[(1, 1)]}
    assert base["Lion"]["receiving_network"].endswith("= 6")
    assert base["UpRight"]["receiving_network"].endswith("= 6")
    assert base["Paxos"]["receiving_network"].endswith("= 5")
    assert base["PBFT"]["receiving_network"].endswith("= 7")
