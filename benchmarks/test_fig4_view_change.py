"""Figure 4: performance during a view change (primary failure).

Base configuration (c = m = 1, N = 6 for SeeMoRe and S-UpRight), 0/0
micro-benchmark, checkpoint period 10000, with the primary crashed partway
through the run.  The paper reports:

* every protocol stalls briefly when the primary crashes and recovers to
  its previous throughput once the view change completes;
* the Lion mode recovers fastest; BFT takes roughly twice as long;
* the Peacock mode recovers faster than S-UpRight and BFT thanks to the
  trusted transferer driving its view change.
"""

import pytest

from repro.analysis import format_timeline
from repro.cluster import builder_for, run_timeline
from repro.faults import FaultPlan
from repro.workload import Workload

PROTOCOLS = ("bft", "s-upright", "seemore-peacock", "seemore-dog", "seemore-lion")
CRASH_AT = 0.3
TOTAL = 1.0
BIN_WIDTH = 0.05


def run_view_change_timeline(protocol: str):
    deployment = builder_for(protocol)(
        crash_tolerance=1,
        byzantine_tolerance=1,
        num_clients=6,
        workload=Workload.build("0/0"),
        seed=40,
        checkpoint_period=10_000,
        client_timeout=0.1,
    )
    plan = FaultPlan().crash_primary_at(CRASH_AT)
    bins = run_timeline(deployment, duration=TOTAL, bin_width=BIN_WIDTH, fault_schedule=list(plan))
    deployment.assert_safe()
    return bins


def outage_duration(bins, crash_at=CRASH_AT, bin_width=BIN_WIDTH):
    """Simulated seconds after the crash during which throughput stays below
    25% of the pre-crash average."""
    before = [rate for start, rate in bins if start < crash_at]
    baseline = sum(before) / len(before) if before else 0.0
    outage = 0.0
    for start, rate in bins:
        if start < crash_at:
            continue
        if rate < 0.25 * baseline:
            outage += bin_width
        else:
            break
    return outage


def recovered_throughput(bins, crash_at=CRASH_AT):
    after = [rate for start, rate in bins if start >= crash_at + 0.3]
    return max(after) if after else 0.0


def baseline_throughput(bins, crash_at=CRASH_AT):
    before = [rate for start, rate in bins if start < crash_at]
    return sum(before) / len(before) if before else 0.0


@pytest.mark.benchmark(group="figure4")
def test_fig4_view_change_timeline(benchmark, report):
    def run_all():
        return {protocol: run_view_change_timeline(protocol) for protocol in PROTOCOLS}

    timelines = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report.section(
        "Figure 4: throughput timeline with the primary crashed at "
        f"t={CRASH_AT}s (c=1, m=1, checkpoint period 10000)"
    )
    summary_rows = []
    for protocol, bins in timelines.items():
        report.line("")
        report.block(format_timeline(protocol, bins))
        summary_rows.append(
            {
                "protocol": protocol,
                "pre_crash_kreqs_per_s": round(baseline_throughput(bins) / 1000, 2),
                "outage_ms": round(outage_duration(bins) * 1000, 1),
                "recovered_kreqs_per_s": round(recovered_throughput(bins) / 1000, 2),
            }
        )
    from repro.analysis import format_results_table

    report.line("")
    report.block(format_results_table(summary_rows))

    # Shape assertions.
    for protocol, bins in timelines.items():
        assert baseline_throughput(bins) > 0, f"{protocol}: no progress before the crash"
        assert recovered_throughput(bins) > 0.4 * baseline_throughput(bins), (
            f"{protocol}: throughput must recover after the view change"
        )
    # SeeMoRe's trusted-collector view changes recover no slower than BFT's.
    assert (
        outage_duration(timelines["seemore-lion"])
        <= outage_duration(timelines["bft"]) + BIN_WIDTH
    )
    assert (
        outage_duration(timelines["seemore-peacock"])
        <= outage_duration(timelines["bft"]) + BIN_WIDTH
    )
