"""Figure 2: fault-tolerance scalability (throughput/latency vs failures).

Each panel fixes the number of tolerated crash (c) and Byzantine (m)
failures, sizes every protocol accordingly (CFT and BFT tolerate f = c+m
failures), sweeps the number of closed-loop clients with the 0/0
micro-benchmark, and traces one latency-throughput curve per protocol:

* 2(a)  f=2  (c=1, m=1):  N — SeeMoRe/S-UpRight 6, CFT 5, BFT 7
* 2(b)  f=4  (c=2, m=2):  N — 11 / 9 / 13
* 2(c)  f=4  (c=1, m=3):  N — 12 / 9 / 13
* 2(d)  f=4  (c=3, m=1):  N — 10 / 9 / 13

The assertions check the paper's qualitative findings, not absolute numbers:
the Lion mode tracks CFT, every SeeMoRe mode beats S-UpRight, S-UpRight is
close to BFT, and when c > m the Dog/Peacock modes overtake the Lion mode.
"""

import pytest

from repro.analysis import format_results_table

from benchmarks.conftest import curve_rows, peak, run_curves


def _report_panel(report, title, curves):
    report.section(title)
    report.block(
        format_results_table(
            curve_rows(curves),
            columns=[
                "protocol",
                "clients",
                "throughput_kreqs_per_s",
                "mean_latency_ms",
                "p99_latency_ms",
                "completed",
            ],
        )
    )
    peaks = [
        {"protocol": protocol, "peak_kreqs_per_s": round(peak(curve) / 1000, 3)}
        for protocol, curve in curves.items()
    ]
    report.line("\npeak throughput per protocol:")
    report.block(format_results_table(peaks))


@pytest.mark.benchmark(group="figure2")
def test_fig2a_f2_c1_m1(benchmark, report):
    curves = benchmark.pedantic(
        run_curves, args=(1, 1), kwargs={"seed": 21}, rounds=1, iterations=1
    )
    _report_panel(report, "Figure 2(a): f=2 (c=1, m=1), 0/0 micro-benchmark", curves)

    # Paper: Lion is close to CFT (8% in the paper); give the simulator slack.
    assert peak(curves["seemore-lion"]) >= 0.70 * peak(curves["cft"])
    # Paper: S-UpRight and BFT are close; both clearly below the Lion mode.
    assert peak(curves["s-upright"]) >= 0.7 * peak(curves["bft"])
    assert peak(curves["seemore-lion"]) > peak(curves["s-upright"])
    # Paper: Peacock sits above S-UpRight but below Dog and Lion.
    assert peak(curves["seemore-peacock"]) > peak(curves["s-upright"])
    assert peak(curves["seemore-lion"]) >= peak(curves["seemore-peacock"])
    # Every protocol beats BFT.
    for protocol in ("seemore-lion", "seemore-dog", "seemore-peacock", "cft", "s-upright"):
        assert peak(curves[protocol]) >= peak(curves["bft"])


@pytest.mark.benchmark(group="figure2")
def test_fig2b_f4_c2_m2(benchmark, report):
    curves = benchmark.pedantic(
        run_curves, args=(2, 2), kwargs={"seed": 22}, rounds=1, iterations=1
    )
    _report_panel(report, "Figure 2(b): f=4 (c=2, m=2), 0/0 micro-benchmark", curves)

    # Paper: the Dog mode's smaller quorum (2m+1=5 of 7 proxies) compensates
    # for its quadratic messages, landing near the Lion mode.
    assert peak(curves["seemore-dog"]) >= 0.6 * peak(curves["seemore-lion"])
    # Paper: Peacock clearly better than S-UpRight and BFT in this setting.
    assert peak(curves["seemore-peacock"]) > peak(curves["s-upright"])
    assert peak(curves["seemore-peacock"]) > peak(curves["bft"])
    assert peak(curves["seemore-lion"]) > peak(curves["s-upright"])


@pytest.mark.benchmark(group="figure2")
def test_fig2c_f4_c1_m3(benchmark, report):
    curves = benchmark.pedantic(
        run_curves, args=(1, 3), kwargs={"seed": 23}, rounds=1, iterations=1
    )
    _report_panel(report, "Figure 2(c): f=4 (c=1, m=3), 0/0 micro-benchmark", curves)

    # Paper: with many Byzantine failures the SeeMoRe network approaches the
    # BFT size and CFT pulls ahead of the Lion mode.
    assert peak(curves["cft"]) >= peak(curves["seemore-lion"]) * 0.95
    # SeeMoRe still dominates the protocols that ignore failure locality.
    assert peak(curves["seemore-lion"]) > peak(curves["bft"])
    assert peak(curves["seemore-dog"]) > peak(curves["bft"])
    assert peak(curves["seemore-peacock"]) >= 0.9 * peak(curves["s-upright"])


@pytest.mark.benchmark(group="figure2")
def test_fig2d_f4_c3_m1(benchmark, report):
    curves = benchmark.pedantic(
        run_curves, args=(3, 1), kwargs={"seed": 24}, rounds=1, iterations=1
    )
    _report_panel(report, "Figure 2(d): f=4 (c=3, m=1), 0/0 micro-benchmark", curves)

    # Paper: with many crash failures the public-cloud modes (Dog/Peacock,
    # only 3m+1 = 4 replicas involved) overtake the Lion mode and reach CFT.
    assert peak(curves["seemore-dog"]) > 1.05 * peak(curves["seemore-lion"])
    assert peak(curves["seemore-peacock"]) >= 0.85 * peak(curves["seemore-lion"])
    assert peak(curves["seemore-dog"]) >= 0.9 * peak(curves["cft"])
    # And everything still beats BFT.
    for protocol in ("seemore-lion", "seemore-dog", "seemore-peacock", "cft", "s-upright"):
        assert peak(curves[protocol]) > peak(curves["bft"])
