"""Ablation: messages exchanged per request — analytic versus measured.

Section 5 derives the number of messages each mode exchanges per committed
request (3N for the Lion mode, N + (3m+1)^2 + (3m+1)N for the Dog mode,
N + 2(3m+1)^2 + (1+S)(3m+1) for the Peacock mode).  This benchmark measures
the actual number of protocol messages the simulated network delivers per
completed request and compares it against those formulas, confirming that
the implementation has the communication pattern the paper claims.
"""

import pytest

from repro.analysis import format_results_table, messages_per_request
from repro.cluster import builder_for, run_deployment
from repro.workload import Workload

PROTOCOLS = ("seemore-lion", "seemore-dog", "seemore-peacock", "cft", "bft", "s-upright")


def measure_messages(protocol: str):
    deployment = builder_for(protocol)(
        crash_tolerance=1,
        byzantine_tolerance=1,
        num_clients=4,
        workload=Workload.build("0/0"),
        seed=60,
        checkpoint_period=10_000,  # keep checkpoint traffic out of the count
    )
    result = run_deployment(deployment, duration=0.3, warmup=0.1)
    stats = deployment.network.stats()
    protocol_messages = stats["messages_delivered"]
    # Client traffic (requests in, replies out) is not part of the paper's
    # per-request message count; subtract it.
    client_message_types = ("Request", "Reply")
    client_messages = sum(stats["by_type"].get(kind, 0) for kind in client_message_types)
    replica_messages = protocol_messages - client_messages
    per_request = replica_messages / max(1, result.completed)
    return per_request, result.completed


@pytest.mark.benchmark(group="ablation")
def test_ablation_messages_per_request(benchmark, report):
    def run_all():
        return {protocol: measure_messages(protocol) for protocol in PROTOCOLS}

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for protocol, (per_request, completed) in measured.items():
        analytic = messages_per_request(protocol, 1, 1)
        rows.append(
            {
                "protocol": protocol,
                "analytic_msgs_per_req": analytic,
                "measured_msgs_per_req": round(per_request, 1),
                "requests_completed": completed,
            }
        )
    report.section("Ablation: protocol messages per committed request (c=1, m=1)")
    report.block(format_results_table(rows))

    by_protocol = {row["protocol"]: row for row in rows}
    # The measured counts track the analytic formulas (within 40%: batching
    # of informs/commits around checkpoints and client retransmissions add
    # slack, but the ordering must hold exactly).
    for protocol in PROTOCOLS:
        analytic = by_protocol[protocol]["analytic_msgs_per_req"]
        measured_value = by_protocol[protocol]["measured_msgs_per_req"]
        assert measured_value <= analytic * 1.4, f"{protocol} sends far more messages than derived"

    # Orderings from Table 1: Lion is the leanest SeeMoRe mode; BFT is the
    # most expensive protocol overall.
    assert (
        by_protocol["seemore-lion"]["measured_msgs_per_req"]
        < by_protocol["seemore-dog"]["measured_msgs_per_req"]
    )
    assert (
        by_protocol["seemore-dog"]["measured_msgs_per_req"]
        <= by_protocol["seemore-peacock"]["measured_msgs_per_req"] * 1.3
    )
    assert (
        by_protocol["seemore-peacock"]["measured_msgs_per_req"]
        < by_protocol["bft"]["measured_msgs_per_req"]
    )
    assert (
        by_protocol["cft"]["measured_msgs_per_req"]
        <= by_protocol["seemore-lion"]["measured_msgs_per_req"]
    )
