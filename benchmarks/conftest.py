"""Shared infrastructure for the benchmark harness.

Each benchmark regenerates one table or figure of the paper: it runs the
experiment once (wrapped in ``benchmark.pedantic`` so pytest-benchmark
records the wall-clock cost of the whole experiment), prints the rows /
series the paper reports, and applies *shape* assertions — who wins, by
roughly what factor — rather than absolute-number assertions, since the
substrate is a simulator rather than the authors' EC2 testbed.

Results are echoed into the terminal summary and written as machine-readable
JSON to ``benchmarks/results.json`` (one document per session: a list of
titled sections with their table lines) so ``pytest benchmarks/
--benchmark-only`` leaves a parseable record.  The file is written only when
at least one benchmark actually reported, so runs that collect but deselect
the benchmarks (e.g. ``pytest -m "not slow"``) touch nothing; it is
gitignored — the durable performance trajectory lives in the
``benchmarks/perf/`` harness's ``BENCH_*.json`` documents instead.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from typing import Dict, List, Sequence

import pytest

from repro.cluster import RunResult, builder_for, run_deployment
from repro.workload import Workload

RESULTS_PATH = pathlib.Path(__file__).parent / "results.json"

# Protocols compared in every figure of Section 6, in the paper's order.
FIGURE_PROTOCOLS = ("bft", "s-upright", "seemore-peacock", "seemore-dog", "seemore-lion", "cft")

# Closed-loop client sweep used for the latency/throughput curves.  The
# paper sweeps the offered load from 10^3 to 10^6 requests/s; in the
# simulator the protocols saturate within a handful of closed-loop clients,
# so a small sweep traces the same curve shape.
CLIENT_SWEEP = (2, 6, 14)
MEASURE_DURATION = 0.25
WARMUP = 0.08

_report_lines: List[str] = []
_report_sections: List[Dict] = []


class BenchReport:
    """Collects the rows a benchmark prints and persists them as JSON."""

    def section(self, title: str) -> None:
        _report_sections.append({"title": title, "lines": []})
        self._emit("")
        self._emit("=" * 78)
        self._emit(title)
        self._emit("=" * 78)

    def line(self, text: str = "") -> None:
        self._emit(text)
        if not _report_sections:
            # Rows reported before the first section() still belong in the
            # JSON artifact, not only in the terminal summary.
            _report_sections.append({"title": "", "lines": []})
        _report_sections[-1]["lines"].append(text)

    def block(self, text: str) -> None:
        for line in text.splitlines():
            self.line(line)

    @staticmethod
    def _emit(line: str) -> None:
        _report_lines.append(line)


@pytest.fixture(scope="session")
def report() -> BenchReport:
    return BenchReport()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _report_lines:
        return
    # Persist once per session, only when a benchmark actually reported.
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
                "sections": _report_sections,
            },
            indent=2,
        )
        + "\n"
    )
    terminalreporter.write_line("")
    terminalreporter.write_line("################ reproduced tables and figures ################")
    for line in _report_lines:
        terminalreporter.write_line(line)
    terminalreporter.write_line(f"(machine-readable copy: {RESULTS_PATH})")


# -- experiment helpers ----------------------------------------------------------


def run_point(
    protocol: str,
    num_clients: int,
    crash_tolerance: int,
    byzantine_tolerance: int,
    workload: Workload = None,
    seed: int = 3,
    duration: float = MEASURE_DURATION,
    warmup: float = WARMUP,
    **builder_kwargs,
) -> RunResult:
    """Run one (protocol, client-count) point of a latency/throughput curve."""
    builder = builder_for(protocol)
    deployment = builder(
        crash_tolerance=crash_tolerance,
        byzantine_tolerance=byzantine_tolerance,
        num_clients=num_clients,
        workload=workload or Workload.build("0/0"),
        seed=seed,
        **builder_kwargs,
    )
    return run_deployment(deployment, duration=duration, warmup=warmup)


def run_curves(
    crash_tolerance: int,
    byzantine_tolerance: int,
    workload: Workload = None,
    protocols: Sequence[str] = FIGURE_PROTOCOLS,
    client_counts: Sequence[int] = CLIENT_SWEEP,
    **kwargs,
) -> Dict[str, List[RunResult]]:
    """Latency/throughput curves for every protocol in one figure panel."""
    curves: Dict[str, List[RunResult]] = {}
    for protocol in protocols:
        curves[protocol] = [
            run_point(
                protocol,
                count,
                crash_tolerance,
                byzantine_tolerance,
                workload=workload,
                **kwargs,
            )
            for count in client_counts
        ]
    return curves


def peak(curve: List[RunResult]) -> float:
    """Peak throughput (requests/second) along one curve."""
    return max(result.throughput for result in curve)


def curve_rows(curves: Dict[str, List[RunResult]]) -> List[Dict]:
    rows = []
    for protocol, results in curves.items():
        for result in results:
            rows.append(result.report_row())
    return rows
