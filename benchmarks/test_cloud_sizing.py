"""Section 4: public-cloud sizing calculator.

Regenerates the worked example from the paper (S=2, c=1, alpha=0.3 requires
renting P=10 public nodes) and sweeps the advertised failure ratio and the
explicit-failure-count model.
"""

import pytest

from repro.analysis import format_results_table
from repro.planner import (
    plan_with_explicit_failures,
    plan_with_failure_ratio,
    rental_is_beneficial,
)


@pytest.mark.benchmark(group="cloud-sizing")
def test_section4_cloud_sizing(benchmark, report):
    def compute():
        ratio_rows = []
        for alpha in (0.05, 0.1, 0.2, 0.25, 0.3):
            plan = plan_with_failure_ratio(2, 1, alpha)
            ratio_rows.append(
                {
                    "alpha": alpha,
                    "rent_P": plan.public_nodes,
                    "network_N": plan.network_size,
                    "tolerated_m": plan.byzantine_tolerance,
                }
            )
        explicit_rows = []
        for malicious in (1, 2, 3):
            plan = plan_with_explicit_failures(2, 1, public_malicious=malicious)
            explicit_rows.append(
                {
                    "explicit_M": malicious,
                    "rent_P": plan.public_nodes,
                    "network_N": plan.network_size,
                }
            )
        return ratio_rows, explicit_rows

    ratio_rows, explicit_rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    report.section("Section 4: public cloud sizing (S=2 private servers, c=1)")
    report.line("\nRatio model (Equation 2):")
    report.block(format_results_table(ratio_rows))
    report.line("\nExplicit failure-count model:")
    report.block(format_results_table(explicit_rows))
    report.line("\nRenting is beneficial only for c < S < 2c+1 "
                f"(S=2,c=1: {rental_is_beneficial(2, 1)}; S=3,c=1: {rental_is_beneficial(3, 1)})")

    # The paper's worked example: alpha=0.3 -> rent 10 nodes.
    example = next(row for row in ratio_rows if row["alpha"] == 0.3)
    assert example["rent_P"] == 10
    # Fewer faulty nodes advertised -> fewer rented nodes needed.
    rents = [row["rent_P"] for row in ratio_rows]
    assert rents == sorted(rents)
