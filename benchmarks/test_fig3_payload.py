"""Figure 3: effect of request/reply payload sizes (c = m = 1).

Repeats the base-case comparison with the 0/4 micro-benchmark (4 KB replies)
and the 4/0 micro-benchmark (4 KB requests).  The paper's findings:

* the Lion and Dog modes stay close to CFT, the Peacock mode and S-UpRight
  stay close to BFT;
* the request payload hurts every protocol more than the reply payload,
  because requests are retransmitted between replicas while replies travel
  only once to the client.
"""

import pytest

from repro.analysis import format_results_table
from repro.workload import Workload

from benchmarks.conftest import curve_rows, peak, run_curves


def _report_panel(report, title, curves):
    report.section(title)
    report.block(
        format_results_table(
            curve_rows(curves),
            columns=[
                "protocol",
                "clients",
                "throughput_kreqs_per_s",
                "mean_latency_ms",
                "p99_latency_ms",
            ],
        )
    )


@pytest.mark.benchmark(group="figure3")
def test_fig3a_benchmark_0_4(benchmark, report):
    curves = benchmark.pedantic(
        run_curves,
        args=(1, 1),
        kwargs={"workload": Workload.build("0/4"), "seed": 31},
        rounds=1,
        iterations=1,
    )
    _report_panel(report, "Figure 3(a): 0/4 micro-benchmark (4 KB replies), c=1, m=1", curves)

    assert peak(curves["seemore-lion"]) >= 0.7 * peak(curves["cft"])
    assert peak(curves["seemore-lion"]) > peak(curves["bft"])
    assert peak(curves["seemore-dog"]) > peak(curves["s-upright"])
    assert peak(curves["seemore-peacock"]) >= 0.85 * peak(curves["s-upright"])


@pytest.mark.benchmark(group="figure3")
def test_fig3b_benchmark_4_0(benchmark, report):
    curves_4_0 = benchmark.pedantic(
        run_curves,
        args=(1, 1),
        kwargs={"workload": Workload.build("4/0"), "seed": 32},
        rounds=1,
        iterations=1,
    )
    _report_panel(report, "Figure 3(b): 4/0 micro-benchmark (4 KB requests), c=1, m=1", curves_4_0)

    assert peak(curves_4_0["seemore-lion"]) >= 0.7 * peak(curves_4_0["cft"])
    assert peak(curves_4_0["seemore-lion"]) > peak(curves_4_0["bft"])
    assert peak(curves_4_0["seemore-dog"]) > peak(curves_4_0["bft"])

    # Cross-panel comparison: request payloads are replicated to every
    # replica, so 4/0 costs more than 0/4 for the replica-heavy protocols.
    curves_0_4 = run_curves(1, 1, workload=Workload.build("0/4"), seed=31, protocols=("bft",))
    report.line("")
    report.line(
        "request-vs-reply payload check (BFT): "
        f"peak 0/4 = {peak(curves_0_4['bft']) / 1000:.2f} Kreq/s, "
        f"peak 4/0 = {peak(curves_4_0['bft']) / 1000:.2f} Kreq/s"
    )
    assert peak(curves_4_0["bft"]) <= peak(curves_0_4["bft"]) * 1.05
