"""Benchmark: request batching and pipelining across the three modes.

The paper's throughput numbers (Figures 2-3) rest on the primary amortizing
one agreement round over many client requests.  This benchmark quantifies
that lever in the reproduction: each mode runs the 0/0 micro-benchmark with
the same offered load (12 pipelined clients, window 8) under three batch
policies — unbatched, ``max_batch=16``, and ``max_batch=64`` (both with a
1 ms linger) — and reports throughput, per-request latency, and the batch
fill actually achieved.

Shape assertions, as everywhere in this harness: batching at size 16+ must
buy at least 5x the unbatched throughput in every mode, and the measured
mean batch fill must be close to the configured cap (the load is sized so
batches can fill).
"""

import pytest

from repro.analysis import format_results_table
from repro.cluster import build_seemore, run_deployment
from repro.core import BatchPolicy, Mode
from repro.workload import Workload

# f=3 (c=1, m=2): the mid-size network of Figure 2, where per-slot agreement
# cost is pronounced enough that batching's amortization shows cleanly.
CRASH_TOLERANCE = 1
BYZANTINE_TOLERANCE = 2
NUM_CLIENTS = 12
CLIENT_WINDOW = 8
DURATION = 0.2
WARMUP = 0.06

POLICIES = [
    ("unbatched", BatchPolicy()),
    ("batch-16", BatchPolicy(max_batch=16, linger=0.001)),
    ("batch-64", BatchPolicy(max_batch=64, linger=0.001)),
]


def run_batching_curves():
    results = {}
    for mode in (Mode.LION, Mode.DOG, Mode.PEACOCK):
        rows = []
        for label, policy in POLICIES:
            deployment = build_seemore(
                crash_tolerance=CRASH_TOLERANCE,
                byzantine_tolerance=BYZANTINE_TOLERANCE,
                mode=mode,
                workload=Workload.build("0/0").with_client_window(CLIENT_WINDOW),
                num_clients=NUM_CLIENTS,
                batch_policy=policy,
                seed=7,
            )
            result = run_deployment(deployment, duration=DURATION, warmup=WARMUP)
            deployment.collect_batch_sizes()
            batch_stats = deployment.metrics.batch_summary()
            rows.append(
                {
                    "mode": mode.name,
                    "policy": label,
                    "max_batch": policy.max_batch,
                    "throughput_kreqs_per_s": round(result.throughput / 1000, 3),
                    "mean_latency_ms": round(result.latency.mean * 1000, 3),
                    "mean_batch_fill": round(batch_stats.mean, 1),
                    "completed": result.completed,
                }
            )
        results[mode.name] = rows
    return results


@pytest.mark.benchmark(group="batching")
def test_batching_throughput_speedup(benchmark, report):
    results = benchmark.pedantic(run_batching_curves, rounds=1, iterations=1)

    report.section(
        "Batching & pipelining: 0/0 micro-benchmark, f=3 (c=1, m=2), "
        f"{NUM_CLIENTS} clients x window {CLIENT_WINDOW}"
    )
    all_rows = [row for rows in results.values() for row in rows]
    report.block(format_results_table(all_rows))
    for mode_name, rows in results.items():
        base = rows[0]["throughput_kreqs_per_s"]
        speedups = {
            row["policy"]: round(row["throughput_kreqs_per_s"] / base, 2)
            for row in rows[1:]
        }
        report.line(f"{mode_name}: speedup over unbatched {speedups}")

    for mode_name, rows in results.items():
        unbatched, batch16, batch64 = rows
        # Headline claim: batching at size 16+ amortizes agreement cost into
        # a >=5x throughput win in every mode.
        assert batch16["throughput_kreqs_per_s"] >= 5.0 * unbatched["throughput_kreqs_per_s"], (
            f"{mode_name}: batch-16 speedup below 5x"
        )
        assert batch64["throughput_kreqs_per_s"] >= 5.0 * unbatched["throughput_kreqs_per_s"], (
            f"{mode_name}: batch-64 speedup below 5x"
        )
        # The offered load (96 outstanding requests) must actually fill
        # batches: mean fill close to the cap for batch-16.
        assert batch16["mean_batch_fill"] >= 12.0, f"{mode_name}: batches did not fill"
        # Bigger batches never hurt throughput in this regime.
        assert batch64["throughput_kreqs_per_s"] >= 0.9 * batch16["throughput_kreqs_per_s"]
        # Batching trades per-request latency for throughput only modestly:
        # the mean stays below the client retransmission timeout.
        assert batch64["mean_latency_ms"] < 100.0
