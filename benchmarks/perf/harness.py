"""Simulator performance harness: standard workloads, machine-readable output.

The harness runs a fixed matrix of workloads — Lion / Dog / Peacock,
batched and unbatched, f = 1..3, with and without faults (via the PR 2
scenario engine), plus an adaptive-controller attack/recovery case and
the sharded scale-out cases — and records for each case:

* ``events_per_second`` — simulator events executed per wall-clock second
  (the headline number; protocol changes move events-per-request, engine
  changes move seconds-per-event, this metric tracks the product);
* ``sim_seconds_per_wall_second`` — how much simulated time one wall second
  buys;
* ``peak_heap_bytes`` — tracemalloc peak over a dedicated instrumented run
  (measured separately so the timing runs stay undistorted);
* committed-request counts, which double as a determinism check: every
  timing repeat of a case must commit exactly the same number of requests.

Results are written as ``BENCH_<date>.json`` in the schema below, so the
repository accumulates a performance trajectory that
``benchmarks/perf/compare.py`` can diff in CI.

Schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "generated_at": "<ISO-8601 UTC>",
      "host": {"python": "...", "platform": "...", "cpu_count": N,
               "calibration_ops_per_second": ...},
      "config": {"repeats": N, "smoke": bool},
      "cases": [
        {
          "name": "lion-f1-batched",
          "protocol": "seemore-lion",
          "backend": "sim",            # or "aio"/"proc": wall-clock over
                                       # loopback TCP, reported but never
                                       # regression-gated
          "crash_tolerance": 1, "byzantine_tolerance": 1,
          "batched": true, "fault_scenario": null,
          "num_procs": 1,              # proc rows: replica worker processes
          "cpu_count": N,              # cores on the measuring host
          "sim_duration": 0.5,
          "completed_requests": N, "events_processed": N,
          "wall_seconds": <min over repeats>,
          "events_per_second": ..., "sim_seconds_per_wall_second": ...,
          "throughput_requests_per_second": ...,
          "peak_heap_bytes": N, "deterministic": true
        }, ...
      ],
      "summary": {
        "events_per_second_geomean": ...,        # sim rows only
        "batched_events_per_second_geomean": ...,
        "peak_heap_bytes_max": N,
        # present per wall-clock backend that ran:
        "wallclock_aio_events_per_second_geomean": ...,
        "wallclock_aio_requests_per_second_geomean": ...,
        "wallclock_proc_events_per_second_geomean": ...,
        "wallclock_proc_requests_per_second_geomean": ...
      }
    }

Determinism guarantee: the caches introduced by the hot-path overhaul
change only wall-clock speed, never simulated behaviour — every case
asserts identical committed counts across repeats, and the tier-1
scenario-matrix tests assert identical committed *state* across replicas.
"""

from __future__ import annotations

import datetime
import json
import math
import hashlib
import heapq
import os
import pathlib
import platform
import sys
import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster import (
    build_sharded_seemore,
    builder_for,
    run_deployment,
    run_sharded_deployment,
)
from repro.core import BatchPolicy, Mode
from repro.workload import Workload, WorkloadSpec

SCHEMA_VERSION = 1

#: The batching policy of the "standard batched workload" (mirrors the PR 1
#: throughput benchmarks: batches actually fill instead of degenerating to
#: one request per slot).
STANDARD_BATCH = dict(max_batch=16, linger=0.002)
STANDARD_CLIENT_WINDOW = 32

_MODES = {
    "seemore-lion": Mode.LION,
    "seemore-dog": Mode.DOG,
    "seemore-peacock": Mode.PEACOCK,
}


@dataclass(frozen=True)
class PerfCase:
    """One measured workload of the standard matrix."""

    name: str
    protocol: str
    crash_tolerance: int = 1
    byzantine_tolerance: int = 1
    batched: bool = True
    num_clients: int = 6
    client_window: int = STANDARD_CLIENT_WINDOW
    duration: float = 0.4
    warmup: float = 0.1
    seed: int = 3
    fault_scenario: Optional[str] = None  # name in the PR 2 scenario library
    # Sharded cases (protocol "seemore-sharded"): shard count and the
    # fraction of operations running the cross-shard two-phase path.  The
    # client count scales with the shard count so each shard sees the same
    # offered load as the single-cluster cases — the committed-ops/sim-second
    # ratio between sharded-Nx and sharded-1x is the scale-out headline.
    num_shards: int = 1
    cross_shard_fraction: float = 0.0
    # Runtime backend.  "sim" measures the discrete-event engine (modeled
    # time, deterministic, regression-gated); "aio" runs the same protocol
    # over real loopback TCP on one event loop and "proc" splits the
    # cluster across OS processes — both report wall-clock throughput,
    # recorded for the trajectory but never gated, since loopback numbers
    # track machine load, not code quality.
    backend: str = "sim"
    # Wall-clock backends only: the closed-loop request budget (aio/proc
    # cases run to a request count rather than to a simulated duration).
    num_requests: int = 400
    # proc-only: replica worker processes (the core-scaling knob).
    num_procs: int = 1
    # Whether this row participates in the regression gate (compare.py and
    # the sim geomeans).  Open-loop rows are reported-only: their headline
    # numbers are latency percentiles under deliberate overload, not
    # engine speed, so gating them would alarm on workload-shape tweaks.
    gated: bool = True
    # Open-loop cases: a name from
    # :data:`repro.scenarios.openloop.OPEN_LOOP_SCENARIOS`, with an
    # optional surge-rate override for the offered-load sweep.
    open_loop_scenario: Optional[str] = None
    surge_rate: Optional[float] = None

    def batch_policy(self) -> Optional[BatchPolicy]:
        if not self.batched:
            return None
        return BatchPolicy(**STANDARD_BATCH)


#: Names of the CI smoke subset.  Smoke cases are the *same case objects*
#: as the full matrix (identical durations and parameters), so their
#: events/sec numbers are directly comparable against a committed
#: full-matrix baseline — a shortened variant under the same name would
#: carry a different warmup fraction and bias the regression gate.
SMOKE_CASE_NAMES = (
    "lion-f1-batched",
    "dog-f1-batched",
    "peacock-f1-batched",
    "lion-f1-batched-primary-crash",
    "sharded-4x-f1-batched",
    "adaptive-attack-recovery",
)


def standard_cases(smoke: bool = False) -> List[PerfCase]:
    """The standard matrix (or its few-minute CI smoke subset)."""
    cases: List[PerfCase] = []
    protocols = ("seemore-lion", "seemore-dog", "seemore-peacock")
    if smoke:
        return [case for case in standard_cases() if case.name in SMOKE_CASE_NAMES]

    for protocol in protocols:
        short = protocol.replace("seemore-", "")
        for tolerance in (1, 2, 3):
            for batched in (True, False):
                flavour = "batched" if batched else "unbatched"
                cases.append(
                    PerfCase(
                        name=f"{short}-f{tolerance}-{flavour}",
                        protocol=protocol,
                        crash_tolerance=tolerance,
                        byzantine_tolerance=tolerance,
                        batched=batched,
                        client_window=STANDARD_CLIENT_WINDOW if batched else 4,
                        duration=0.4 if batched else 0.3,
                    )
                )
        cases.append(
            PerfCase(
                name=f"{short}-f1-batched-primary-crash",
                protocol=protocol,
                fault_scenario="primary-crash-mid-batch",
                duration=0.7,
            )
        )

    # Adaptive-controller case: an equivocation attack forces Lion up to
    # Peacock and a quiet period brings it back; the committed-request and
    # throughput numbers show de-escalation recovering Lion-like service
    # after the attack subsides (the run fails outright if the cycle or
    # any safety checker does).  The duration comes from the scenario
    # itself so the recorded sim_duration and throughput stay honest if
    # the scenario's timing is retuned.
    from repro.scenarios.adaptive import DEESCALATE_AFTER_QUIET_PERIOD

    cases.append(
        PerfCase(
            name="adaptive-attack-recovery",
            protocol="seemore-lion",
            fault_scenario=DEESCALATE_AFTER_QUIET_PERIOD.name,
            duration=DEESCALATE_AFTER_QUIET_PERIOD.duration,
        )
    )

    # Sharded scale-out cases: 1-shard as the single-cluster reference
    # (same per-shard knobs, so the Nx/1x committed-ops/sim-second ratio
    # is the scale-out factor), 4 shards on pure single-shard traffic,
    # and 4 shards with 10% cross-shard transactions (the 2PC overhead).
    for num_shards, cross_fraction, suffix in (
        (1, 0.0, "sharded-1x-f1-batched"),
        (4, 0.0, "sharded-4x-f1-batched"),
        (4, 0.1, "sharded-4x-f1-xshard10"),
    ):
        cases.append(
            PerfCase(
                name=suffix,
                protocol="seemore-sharded",
                num_shards=num_shards,
                cross_shard_fraction=cross_fraction,
                num_clients=6 * num_shards,
            )
        )
    return cases


def aio_cases() -> List[PerfCase]:
    """Wall-clock cases on the asyncio-TCP backend (reported, never gated).

    The case names deliberately mirror their sim counterparts; the
    ``backend`` field is what tells the rows apart in the JSON.
    """
    return [
        PerfCase(
            name="lion-f1-batched",
            protocol="seemore-lion",
            backend="aio",
            num_requests=400,
            client_window=16,
        )
    ]


def proc_cases(max_procs: int = 4) -> List[PerfCase]:
    """The multiprocess core-scaling sweep (reported, never gated).

    One ``lion-f1-batched`` wall-clock case per power-of-two replica
    process count up to ``max_procs``; identical request budget and
    client window to the aio case, so the p1 row isolates the IPC tax of
    the process split and the p2/p4 rows show what extra cores buy.
    """
    sweep = []
    procs = 1
    while procs <= max_procs:
        sweep.append(
            PerfCase(
                name=f"lion-f1-batched-p{procs}",
                protocol="seemore-lion",
                backend="proc",
                num_requests=400,
                client_window=16,
                num_procs=procs,
            )
        )
        procs *= 2
    return sweep


def openloop_cases() -> List[PerfCase]:
    """The open-loop offered-load sweep (reported, never gated).

    Three surge rates over the admission-controlled scenario show how
    served latency degrades as offered load climbs past capacity, and the
    no-admission case at the middle rate is the bufferbloat control: same
    surge, no shedding, latency an order of magnitude worse.
    """
    sweep = [
        PerfCase(
            name=f"openloop-surge-{label}",
            protocol="seemore-lion",
            open_loop_scenario="surge-admission-on",
            surge_rate=rate,
            duration=1.0,
            warmup=0.25,
            gated=False,
        )
        for label, rate in (("2x", 3_200.0), ("5x", 8_000.0), ("10x", 16_000.0))
    ]
    sweep.append(
        PerfCase(
            name="openloop-surge-5x-noadmission",
            protocol="seemore-lion",
            open_loop_scenario="surge-admission-off",
            surge_rate=8_000.0,
            duration=1.0,
            warmup=0.25,
            gated=False,
        )
    )
    return sweep


#: The one open-loop row CI's perf-smoke run reports alongside the gated
#: smoke subset (the cheapest point of the sweep).
OPENLOOP_SMOKE_CASE_NAME = "openloop-surge-2x"


# -- running one case -------------------------------------------------------------


def _run_once_aio(case: PerfCase) -> Dict[str, Any]:
    """One wall-clock execution over real loopback TCP.

    Reuses the conformance harness's cluster construction so the perf and
    conformance paths cannot drift apart; "events" on this backend means
    messages delivered over the wire.
    """
    from repro.runtime.aio import AioRuntime
    from repro.runtime.conformance import _build_cluster

    runtime = AioRuntime()
    replicas, client = _build_cluster(
        runtime,
        _MODES[case.protocol],
        num_requests=case.num_requests,
        window=case.client_window,
        request_timeout=5.0,
        client_timeout=2.0,
        max_batch=STANDARD_BATCH["max_batch"],
        seed=case.seed,
    )
    start = time.perf_counter()
    finished = runtime.run(
        kickoff=client.start,
        until=lambda: client.completed_count >= case.num_requests,
        timeout=120.0,
    )
    wall = time.perf_counter() - start
    if not finished:
        raise AssertionError(
            f"aio case {case.name!r} timed out: "
            f"{client.completed_count}/{case.num_requests} completed"
        )
    return {
        "wall": wall,
        "events": runtime.messages_delivered,
        "completed": client.completed_count,
        # Real time: one wall second buys exactly one second of protocol time.
        "sim_seconds": wall,
    }


def _run_once_proc(case: PerfCase) -> Dict[str, Any]:
    """One wall-clock execution across worker processes.

    The wall time is the supervisor's go-to-done span (endpoint broadcast
    until the client's completion report), so process spawn and handshake
    cost is excluded — the number measures steady-state throughput, same
    as the aio case's loop-resident measurement.  "events" aggregates
    messages delivered across every worker runtime.
    """
    from repro.cluster.builders import build_proc_seemore

    cluster = build_proc_seemore(
        mode=_MODES[case.protocol],
        num_procs=case.num_procs,
        num_requests=case.num_requests,
        window=case.client_window,
        max_batch=STANDARD_BATCH["max_batch"],
        seed=case.seed,
    )
    result = cluster.run(timeout=180.0)
    if not result.met:
        completed = result.harvests.get("client", {}).get("completed", "?")
        raise AssertionError(
            f"proc case {case.name!r} failed: {completed}/{case.num_requests} "
            f"completed (deaths={result.deaths}, errors={result.errors})"
        )
    return {
        "wall": result.wall_seconds,
        "events": result.messages_delivered(),
        "completed": result.harvests["client"]["completed"],
        "sim_seconds": result.wall_seconds,
    }


def _run_once(case: PerfCase) -> Dict[str, Any]:
    """One measured execution; returns wall time, events, completions."""
    if case.backend == "aio":
        return _run_once_aio(case)
    if case.backend == "proc":
        return _run_once_proc(case)
    if case.open_loop_scenario is not None:
        return _run_once_open_loop(case)
    if case.fault_scenario is not None:
        from repro.scenarios.adaptive import ADAPTIVE_SCENARIOS, run_adaptive_scenario
        from repro.scenarios.engine import run_scenario
        from repro.scenarios.library import SCENARIOS

        if case.fault_scenario in ADAPTIVE_SCENARIOS:
            scenario = ADAPTIVE_SCENARIOS[case.fault_scenario]
            start = time.perf_counter()
            result = run_adaptive_scenario(scenario, _MODES[case.protocol], seed=case.seed)
        else:
            scenario = SCENARIOS[case.fault_scenario]
            start = time.perf_counter()
            result = run_scenario(scenario, _MODES[case.protocol], seed=case.seed)
        wall = time.perf_counter() - start
        result.assert_ok()
        return {
            "wall": wall,
            "events": result.events_processed,
            "completed": result.completed,
            "sim_seconds": result.simulated_seconds,
        }

    if case.protocol == "seemore-sharded":
        deployment = build_sharded_seemore(
            num_shards=case.num_shards,
            crash_tolerance=case.crash_tolerance,
            byzantine_tolerance=case.byzantine_tolerance,
            num_clients=case.num_clients,
            workload=Workload.build(
                WorkloadSpec(
                    kind="sharded-kv",
                    seed=case.seed,
                    cross_shard_fraction=case.cross_shard_fraction,
                )
            ),
            seed=case.seed,
            batch_policy=case.batch_policy(),
            client_window=case.client_window,
        )
        start = time.perf_counter()
        sharded_result = run_sharded_deployment(
            deployment, duration=case.duration, warmup=case.warmup
        )
        wall = time.perf_counter() - start
        return {
            "wall": wall,
            "events": deployment.simulator.events_processed,
            "completed": sharded_result.aggregate.completed,
            "sim_seconds": deployment.simulator.now,
        }

    builder = builder_for(case.protocol)
    deployment = builder(
        crash_tolerance=case.crash_tolerance,
        byzantine_tolerance=case.byzantine_tolerance,
        num_clients=case.num_clients,
        workload=Workload.build("0/0"),
        seed=case.seed,
        batch_policy=case.batch_policy(),
        client_window=case.client_window,
    )
    start = time.perf_counter()
    result = run_deployment(deployment, duration=case.duration, warmup=case.warmup)
    wall = time.perf_counter() - start
    return {
        "wall": wall,
        "events": deployment.simulator.events_processed,
        "completed": result.completed,
        "sim_seconds": deployment.simulator.now,
    }


def _run_once_open_loop(case: PerfCase) -> Dict[str, Any]:
    """One open-loop scenario execution on the sim backend.

    The ``extra`` dict carries the open-loop headline numbers (offered
    load, served percentiles, shed/dropped counters, SLO verdict) into the
    case row; the base keys keep the usual events/sec accounting working.
    """
    import dataclasses

    from repro.cluster.runner import run_open_loop
    from repro.scenarios.openloop import OPEN_LOOP_SCENARIOS, build_open_loop_deployment

    scenario = OPEN_LOOP_SCENARIOS[case.open_loop_scenario]
    overrides: Dict[str, Any] = {"duration": case.duration, "warmup": case.warmup}
    if case.surge_rate is not None:
        overrides["surge_rate"] = case.surge_rate
    scenario = dataclasses.replace(scenario, **overrides)
    deployment, driver = build_open_loop_deployment(scenario, _MODES[case.protocol])
    start = time.perf_counter()
    result = run_open_loop(
        deployment,
        driver,
        duration=scenario.duration,
        warmup=scenario.warmup,
        slo=scenario.slo,
    )
    wall = time.perf_counter() - start
    return {
        "wall": wall,
        "events": deployment.simulator.events_processed,
        "completed": result.completed,
        "sim_seconds": deployment.simulator.now,
        "extra": {
            "offered_rate_reqs_per_s": round(result.offered_rate, 1),
            "p50_latency_ms": round(result.latency.p50 * 1000.0, 3),
            "p99_latency_ms": round(result.latency.p99 * 1000.0, 3),
            "p999_latency_ms": round(result.latency.p999 * 1000.0, 3),
            "offered": result.offered,
            "dropped": result.dropped,
            "shed": result.shed,
            "busy_rejects": result.busy_rejects,
            "slo_holds": result.slo_holds,
            "admission": scenario.admission is not None,
        },
    }


def run_case(case: PerfCase, repeats: int = 3, measure_heap: bool = True) -> Dict[str, Any]:
    """Run one case ``repeats`` times plus one instrumented heap pass.

    The reported wall time is the *minimum* over the timing repeats — the
    standard ``timeit`` estimator: repeats execute identical work, so the
    fastest run is the one least disturbed by scheduler/thermal noise.  The
    heap pass runs under ``tracemalloc`` and contributes only its peak.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1: {repeats}")

    if case.backend != "sim":
        # Wall-clock backends carry no determinism contract (real scheduling
        # jitter moves batch boundaries) and no tracemalloc pass: a single
        # run is the datapoint.
        runs = [_run_once(case)]
        deterministic = False
        peak_heap = None
    else:
        runs = [_run_once(case) for _ in range(repeats)]

        completions = {run["completed"] for run in runs}
        events = {run["events"] for run in runs}
        deterministic = len(completions) == 1 and len(events) == 1
        if not deterministic:  # pragma: no cover - would indicate an engine bug
            raise AssertionError(
                f"case {case.name!r} is non-deterministic across repeats: "
                f"completions={sorted(completions)}, events={sorted(events)}"
            )

        peak_heap = None
        if measure_heap:
            tracemalloc.start()
            try:
                _run_once(case)
                _, peak_heap = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()

    wall = min(run["wall"] for run in runs)
    reference = runs[0]
    # On the wall-clock backend "duration" is the measured run itself.
    duration = case.duration if case.backend == "sim" else reference["sim_seconds"]
    row = {
        "name": case.name,
        "protocol": case.protocol,
        "backend": case.backend,
        "crash_tolerance": case.crash_tolerance,
        "byzantine_tolerance": case.byzantine_tolerance,
        "batched": case.batched,
        "fault_scenario": case.fault_scenario,
        "num_shards": case.num_shards,
        "num_procs": case.num_procs,
        # Wall-clock rows are only comparable on similar hardware; record
        # the core count beside every row so baselines are self-describing.
        "cpu_count": os.cpu_count(),
        "sim_duration": round(duration, 4),
        "completed_requests": reference["completed"],
        "events_processed": reference["events"],
        "wall_seconds": round(wall, 4),
        "events_per_second": round(reference["events"] / wall, 1),
        "sim_seconds_per_wall_second": round(reference["sim_seconds"] / wall, 4),
        "throughput_requests_per_second": round(reference["completed"] / duration, 1),
        "peak_heap_bytes": peak_heap,
        "deterministic": deterministic,
        "gated": case.gated,
    }
    row.update(reference.get("extra", {}))
    return row


# -- the full suite ---------------------------------------------------------------


def calibration_score(iterations: int = 120_000, repeats: int = 3) -> float:
    """Machine-speed proxy: fixed sha256 + heap-churn work per second.

    The mix mirrors the simulator's hot path (hashing and heap ops), so
    dividing a case's events/sec by this score yields a roughly
    machine-independent number.  ``compare.py`` uses it to normalize a run
    from one machine (e.g. a CI runner) against a baseline recorded on
    another; the min-of-repeats estimator matches the case timings.
    """
    payload = b"x" * 64
    best = float("inf")
    for _ in range(repeats):
        heap: list = []
        start = time.perf_counter()
        for index in range(iterations):
            hashlib.sha256(payload)
            heapq.heappush(heap, ((index * 31) % 997, index))
            if len(heap) > 512:
                heapq.heappop(heap)
        best = min(best, time.perf_counter() - start)
    return iterations / best


def _geomean(values: Sequence[float]) -> Optional[float]:
    values = [value for value in values if value and value > 0]
    if not values:
        return None
    return math.exp(sum(math.log(value) for value in values) / len(values))


def run_suite(
    cases: Optional[Sequence[PerfCase]] = None,
    repeats: int = 3,
    smoke: bool = False,
    measure_heap: bool = True,
    progress: Any = None,
) -> Dict[str, Any]:
    """Run the whole matrix and return the BENCH document (not yet written)."""
    if cases is None:
        cases = standard_cases(smoke=smoke)
    rows: List[Dict[str, Any]] = []
    for case in cases:
        if progress is not None:
            progress(f"running {case.name} ...")
        rows.append(run_case(case, repeats=repeats, measure_heap=measure_heap))

    # The headline geomeans cover the sim backend only: wall-clock rows
    # are machine-load-dependent datapoints, not part of the gated
    # trajectory.  Each wall-clock backend present gets its own
    # ``wallclock_<backend>_*`` geomeans so WALLCLOCK documents are
    # self-describing instead of carrying an all-null summary.
    sim_rows = [
        row for row in rows if row["backend"] == "sim" and row.get("gated", True)
    ]
    batched_rows = [
        row for row in sim_rows if row["batched"] and not row["fault_scenario"]
    ]
    heap_values = [row["peak_heap_bytes"] for row in rows if row["peak_heap_bytes"]]
    summary: Dict[str, Any] = {
        "events_per_second_geomean": _round(
            _geomean([row["events_per_second"] for row in sim_rows])
        ),
        "batched_events_per_second_geomean": _round(
            _geomean([row["events_per_second"] for row in batched_rows])
        ),
        "peak_heap_bytes_max": max(heap_values) if heap_values else None,
    }
    wallclock_rows = [row for row in rows if row["backend"] != "sim"]
    for backend in sorted({row["backend"] for row in wallclock_rows}):
        backend_rows = [row for row in wallclock_rows if row["backend"] == backend]
        summary[f"wallclock_{backend}_events_per_second_geomean"] = _round(
            _geomean([row["events_per_second"] for row in backend_rows])
        )
        summary[f"wallclock_{backend}_requests_per_second_geomean"] = _round(
            _geomean(
                [row["throughput_requests_per_second"] for row in backend_rows]
            )
        )
    # Open-loop rows (reported, never gated): worst served p99 across the
    # sweep and whether every admission-controlled point held its SLO.
    openloop_rows = [row for row in rows if "p99_latency_ms" in row]
    if openloop_rows:
        summary["openloop_p99_latency_ms_max"] = max(
            row["p99_latency_ms"] for row in openloop_rows
        )
        summary["openloop_slo_all_hold"] = all(
            row["slo_holds"]
            for row in openloop_rows
            if row.get("admission") and row["slo_holds"] is not None
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "calibration_ops_per_second": round(calibration_score(), 1),
        },
        "config": {"repeats": repeats, "smoke": smoke},
        "cases": rows,
        "summary": summary,
    }


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 1)


def default_output_path(out_dir: Optional[pathlib.Path] = None) -> pathlib.Path:
    """``benchmarks/perf/results/BENCH_<date>.json`` (gitignored directory)."""
    if out_dir is None:
        out_dir = pathlib.Path(__file__).parent / "results"
    stamp = datetime.date.today().isoformat()
    return pathlib.Path(out_dir) / f"BENCH_{stamp}.json"


def write_bench(document: Dict[str, Any], path: pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path
