"""Compare two ``BENCH_*.json`` documents and fail on events/sec regression.

Usage::

    python benchmarks/perf/compare.py CURRENT.json BASELINE.json \
        [--max-regression 0.25] [--no-calibration]

Cases are matched by name; when the two documents do not carry the same
case set (e.g. the candidate added sharded cases the committed baseline
predates), the difference is printed as a warning and the comparison —
and the regression gate — covers only the intersection.  The gate never
fails because of cases the baseline lacks.  A case whose events/sec is
zero or missing on either side cannot produce a meaningful ratio
(``0/x`` would zero the geomean, ``x/0`` would make it infinite); such
cases are excluded from the geometric mean with a warning instead of
poisoning the gate in either direction.  When both documents carry a
``host.calibration_ops_per_second`` score (a fixed sha256 + heap-churn
workload measured by the harness on the machine that produced the
document), each side's events/sec is divided by its own score first, so a
baseline recorded on a fast workstation remains comparable on a slower CI
runner and vice versa.  Without calibration on both sides the raw numbers
are compared (same-machine trajectories).

The check fails (exit code 1) when the geometric-mean ratio over the
shared cases drops by more than ``--max-regression`` (default 25%); the
geometric mean — rather than any single case — keeps the gate robust
against per-case wall-clock noise, while a real hot-path regression moves
every case.  Per-case ratios are printed either way so a localized
regression is still visible in the log.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
from typing import Optional, Tuple


def load(path: pathlib.Path) -> Tuple[dict, Optional[float]]:
    document = json.loads(pathlib.Path(path).read_text())
    # Wall-clock rows (backend "aio") are trajectory datapoints, never part
    # of the regression gate: their events/sec tracks machine load.  Rows
    # predating the backend field are sim rows.  Rows explicitly marked
    # ``gated: false`` (the open-loop sweep) are likewise reported-only.
    cases = {
        case["name"]: case
        for case in document["cases"]
        if case.get("backend", "sim") == "sim" and case.get("gated", True)
    }
    skipped = len(document["cases"]) - len(cases)
    if skipped:
        print(
            f"note: {skipped} non-sim (wall-clock) or ungated case(s) in {path} "
            "excluded from the gate"
        )
    calibration = document.get("host", {}).get("calibration_ops_per_second")
    return cases, calibration


def compare(
    current_path: pathlib.Path,
    baseline_path: pathlib.Path,
    max_regression: float,
    use_calibration: bool = True,
) -> int:
    current, current_cal = load(current_path)
    baseline, baseline_cal = load(baseline_path)
    shared = sorted(set(current) & set(baseline))
    if not shared:
        print("error: the two documents share no case names", file=sys.stderr)
        return 2
    only_current = sorted(set(current) - set(baseline))
    only_baseline = sorted(set(baseline) - set(current))
    if only_current:
        print(
            f"warning: {len(only_current)} case(s) missing from the baseline "
            f"(not gated): {', '.join(only_current)}"
        )
    if only_baseline:
        print(
            f"warning: {len(only_baseline)} baseline case(s) missing from the "
            f"current run (ignored): {', '.join(only_baseline)}"
        )
    if only_current or only_baseline:
        print(f"comparing the {len(shared)} shared case(s)\n")

    normalize = use_calibration and current_cal and baseline_cal
    if normalize:
        print(
            f"calibration: current {current_cal:,.0f} ops/s, "
            f"baseline {baseline_cal:,.0f} ops/s — comparing normalized events/sec"
        )
        current_scale, baseline_scale = 1.0 / current_cal, 1.0 / baseline_cal
    else:
        print("calibration scores missing on one side — comparing raw events/sec")
        current_scale = baseline_scale = 1.0

    ratios = []
    degenerate = []
    width = max(len(name) for name in shared)
    print(f"{'case'.ljust(width)}  {'current':>12}  {'baseline':>12}  {'ratio':>7}")
    for name in shared:
        now = current[name].get("events_per_second") or 0.0
        then = baseline[name].get("events_per_second") or 0.0
        if now > 0 and then > 0:
            ratio = (now * current_scale) / (then * baseline_scale)
            ratios.append(ratio)
            shown = f"{ratio:>7.2f}"
        else:
            # A zero/missing side has no meaningful ratio: 0/x would drag
            # the geomean to zero, x/0 would push it to infinity.  Either
            # way one broken case must not decide the gate silently.
            degenerate.append(name)
            shown = f"{'n/a':>7}"
        print(f"{name.ljust(width)}  {now:>12,.0f}  {then:>12,.0f}  {shown}")

    if degenerate:
        print(
            f"warning: {len(degenerate)} case(s) with zero/missing events/sec "
            f"excluded from the geomean: {', '.join(degenerate)}"
        )
    if not ratios:
        print(
            "error: no shared case has a nonzero events/sec on both sides",
            file=sys.stderr,
        )
        return 2

    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    floor = 1.0 - max_regression
    print(f"\ngeomean ratio: {geomean:.3f}  (failure threshold: < {floor:.2f})")
    if geomean < floor:
        print(
            f"FAIL: events/sec regressed by more than {max_regression:.0%} "
            f"({geomean:.3f} of baseline)",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("--max-regression", type=float, default=0.25)
    parser.add_argument(
        "--no-calibration",
        action="store_true",
        help="compare raw events/sec even when calibration scores are present",
    )
    args = parser.parse_args(argv)
    return compare(
        args.current,
        args.baseline,
        args.max_regression,
        use_calibration=not args.no_calibration,
    )


if __name__ == "__main__":
    raise SystemExit(main())
