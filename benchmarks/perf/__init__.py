"""Persistent performance-trajectory harness (``BENCH_*.json``).

Unlike the figure-reproduction benchmarks under ``benchmarks/`` (which
measure *simulated* protocol performance), this package measures the
**simulator itself**: how many events per wall-clock second the engine
sustains on standard workloads, so hot-path regressions are caught before
they land.  See ``benchmarks/perf/harness.py`` for the schema and
``README.md`` ("Performance") for usage.
"""
