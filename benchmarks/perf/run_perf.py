"""CLI for the simulator performance harness.

Usage (from the repository root, with ``PYTHONPATH=src``)::

    python benchmarks/perf/run_perf.py                 # full matrix
    python benchmarks/perf/run_perf.py --smoke         # ~30 s CI subset
    python benchmarks/perf/run_perf.py --out BENCH.json --repeats 5

Writes ``BENCH_<date>.json`` under ``benchmarks/perf/results/`` unless
``--out`` is given.  Compare two documents with
``python benchmarks/perf/compare.py CURRENT BASELINE``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from harness import (  # noqa: E402
    OPENLOOP_SMOKE_CASE_NAME,
    aio_cases,
    default_output_path,
    openloop_cases,
    proc_cases,
    run_suite,
    standard_cases,
    write_bench,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path, default=None, help="output JSON path")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI smoke subset (same case parameters as the full matrix)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats per case")
    parser.add_argument(
        "--no-heap", action="store_true", help="skip the tracemalloc peak-heap pass"
    )
    parser.add_argument(
        "--aio",
        action="store_true",
        help="append the wall-clock asyncio-TCP cases (reported, never gated)",
    )
    parser.add_argument(
        "--aio-only",
        action="store_true",
        help="run only the wall-clock cases (asyncio-TCP, plus the "
        "multiprocess sweep when --procs is given)",
    )
    parser.add_argument(
        "--openloop",
        action="store_true",
        help="append the open-loop offered-load sweep (reported, never gated)",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=0,
        metavar="N",
        help="append the multiprocess core-scaling sweep: one proc case per "
        "power-of-two replica process count up to N (reported, never gated)",
    )
    args = parser.parse_args(argv)

    if args.aio_only:
        cases = aio_cases()
    else:
        cases = standard_cases(smoke=args.smoke)
        if args.aio:
            cases = cases + aio_cases()
        if args.openloop:
            cases = cases + openloop_cases()
        elif args.smoke:
            # The smoke run reports one open-loop point (never gated) so
            # the CI trajectory records served percentiles under surge.
            cases = cases + [
                case
                for case in openloop_cases()
                if case.name == OPENLOOP_SMOKE_CASE_NAME
            ]
    if args.procs > 0:
        cases = cases + proc_cases(max_procs=args.procs)

    document = run_suite(
        cases=cases,
        repeats=args.repeats,
        smoke=args.smoke,
        measure_heap=not args.no_heap,
        progress=lambda line: print(line, flush=True),
    )
    out = args.out if args.out is not None else default_output_path()
    write_bench(document, out)

    print(f"\nwrote {out}")
    width = max(len(row["name"]) for row in document["cases"])
    print(f"{'case'.ljust(width)}  {'events/s':>10}  {'sim-s/wall-s':>12}  {'completed':>9}")
    for row in document["cases"]:
        print(
            f"{row['name'].ljust(width)}  {row['events_per_second']:>10,.0f}  "
            f"{row['sim_seconds_per_wall_second']:>12.3f}  {row['completed_requests']:>9}"
        )
    summary = document["summary"]
    geomean = summary["events_per_second_geomean"]
    if geomean is not None:  # an --aio-only run has no sim rows to average
        print(f"\nevents/s geomean: {geomean:,.0f}")
    for key in sorted(summary):
        if key.startswith("wallclock_") and summary[key] is not None:
            print(f"{key}: {summary[key]:,.0f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
