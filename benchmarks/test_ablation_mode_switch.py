"""Ablation: dynamic mode switching under load (Section 5.4).

Not a numbered figure in the paper, but an ablation of one of its design
choices: the ability to move between modes at run time.  The experiment
runs the 0/0 micro-benchmark, switches Lion -> Dog -> Peacock -> Lion while
clients keep issuing requests, and reports the throughput observed in each
phase plus the cost (completed-request dip) around each switch.
"""

import pytest

from repro.analysis import format_results_table
from repro.cluster import build_seemore
from repro.core import Mode
from repro.workload import Workload

PHASE_LENGTH = 0.35
SCHEDULE = [Mode.DOG, Mode.PEACOCK, Mode.LION]


def run_mode_switch_experiment():
    deployment = build_seemore(
        crash_tolerance=1,
        byzantine_tolerance=1,
        mode=Mode.LION,
        workload=Workload.build("0/0"),
        num_clients=6,
        seed=50,
        client_timeout=0.1,
    )
    config = deployment.extras["config"]
    simulator = deployment.simulator
    deployment.start_clients()

    phases = []
    boundary = 0.0
    current_mode = Mode.LION
    simulator.run(until=PHASE_LENGTH)
    phases.append((current_mode, boundary, PHASE_LENGTH))
    boundary = PHASE_LENGTH

    for target in SCHEDULE:
        initiator = next(
            deployment.replicas[r]
            for r in config.private_replicas
            if not deployment.replicas[r].crashed
        )
        initiator.request_mode_switch(target)
        end = boundary + PHASE_LENGTH
        simulator.run(until=end)
        phases.append((target, boundary, end))
        boundary = end

    deployment.stop_clients()
    deployment.assert_safe()

    rows = []
    for mode, start, end in phases:
        completed = len(
            [r for r in deployment.metrics.records if start <= r.completed_at < end]
        )
        rows.append(
            {
                "phase": f"{start:.2f}-{end:.2f}s",
                "mode": mode.name,
                "completed": completed,
                "throughput_kreqs_per_s": round(completed / (end - start) / 1000, 3),
            }
        )
    final_modes = {replica.mode for replica in deployment.correct_replicas()}
    return rows, final_modes


@pytest.mark.benchmark(group="ablation")
def test_ablation_dynamic_mode_switching(benchmark, report):
    rows, final_modes = benchmark.pedantic(run_mode_switch_experiment, rounds=1, iterations=1)

    report.section("Ablation: dynamic mode switching (Lion -> Dog -> Peacock -> Lion)")
    report.block(format_results_table(rows))

    assert final_modes == {Mode.LION}
    # Every phase keeps making progress: switching modes never halts the service.
    assert all(row["completed"] > 50 for row in rows)
    # The throughput penalty of living through two view changes per phase is
    # bounded: no phase collapses below a third of the best phase.
    throughputs = [row["throughput_kreqs_per_s"] for row in rows]
    assert min(throughputs) > max(throughputs) / 3.0
