#!/usr/bin/env python3
"""A replicated key-value store on a hybrid cloud, with failures injected.

This example plays the role of the small enterprise from the paper's
introduction: it owns a couple of trusted servers, rents public-cloud
capacity, and wants a replicated key-value store that keeps working when a
private server crashes *and* a rented server turns malicious.

The example:

1. uses the Section 4 planner to size the public-cloud rental;
2. deploys SeeMoRe (Lion mode) with a key-value workload;
3. crashes one private replica and makes one public replica Byzantine
   mid-run, at the tolerated bounds;
4. shows that clients keep completing requests and that all correct
   replicas end with identical key-value state.

Run with:  python examples/hybrid_kv_store.py
"""

from repro import Mode, build_seemore, plan_with_failure_ratio
from repro.faults import crash_replica, make_byzantine
from repro.workload import Workload, WorkloadSpec


def main() -> None:
    print("=== Replicated key-value store on a hybrid cloud ===\n")

    # --- 1. plan the rental (Section 4) -----------------------------------
    plan = plan_with_failure_ratio(private_size=2, crash_tolerance=1, malicious_ratio=0.3)
    print("cloud plan:", plan.rationale)
    print(f"  rent {plan.public_nodes} public nodes "
          f"(tolerating m={plan.byzantine_tolerance} Byzantine failures); "
          f"total network {plan.network_size}\n")

    # --- 2. deploy the store ----------------------------------------------
    # For the running example we deploy the paper's evaluation layout
    # (c = m = 1, N = 6) with a 50/50 read-write key-value workload.
    deployment = build_seemore(
        crash_tolerance=1,
        byzantine_tolerance=1,
        mode=Mode.LION,
        workload=Workload.build(
            WorkloadSpec(kind="kv", key_space=500, value_size=128, read_fraction=0.5, seed=7)
        ),
        num_clients=6,
        seed=7,
        client_timeout=0.1,
    )
    config = deployment.extras["config"]
    simulator = deployment.simulator

    deployment.start_clients()
    simulator.run(until=0.3)
    healthy_completed = deployment.metrics.completed
    print(f"healthy phase      : {healthy_completed} requests completed in 0.3 s")

    # --- 3. inject the faults the deployment must tolerate ------------------
    crashed = config.private_replicas[1]
    byzantine = config.public_replicas[1]
    crash_replica(deployment, crashed)
    make_byzantine(deployment, byzantine, "lie")
    print(f"faults injected    : crashed {crashed} (private), {byzantine} now lies to clients")

    simulator.run(until=1.2)
    deployment.stop_clients()
    total_completed = deployment.metrics.completed
    print(f"after faults       : {total_completed - healthy_completed} more requests completed")

    # --- 4. verify convergence ----------------------------------------------
    deployment.assert_safe()
    fully_executed = max(replica.last_executed for replica in deployment.correct_replicas())
    snapshots = {
        replica.node_id: replica.executor.state_machine.snapshot()
        for replica in deployment.correct_replicas()
        if replica.last_executed == fully_executed
    }
    reference = next(iter(snapshots.values()))
    agree = all(snapshot == reference for snapshot in snapshots.values())
    print(f"replica state      : {len(reference)} keys; "
          f"{len(snapshots)} caught-up correct replicas "
          f"{'agree' if agree else 'DISAGREE'} on the full key-value state")
    print("safety             : no conflicting commits among correct replicas")

    summary = deployment.metrics.latency()
    print(f"latency            : mean {summary.mean * 1000:.3f} ms, "
          f"p99 {summary.p99 * 1000:.3f} ms over {summary.count} requests")


if __name__ == "__main__":
    main()
