#!/usr/bin/env python3
"""A multi-core SeeMoRe cluster: one OS process per replica group.

``examples/real_cluster.py`` already runs the protocol over real loopback
TCP, but on a single event loop — one core, one GIL.  This example splits
the same cluster across OS processes instead: four replica worker
processes (plus one client process) under a :class:`ProcCluster`
supervisor, each running its own asyncio runtime, exchanging the same
binary wire envelopes over TCP.  The supervisor spawns the workers, runs
the readiness/endpoint handshake, streams per-node stats back over a
control channel, and shuts everything down cleanly — no orphaned process
or socket outlives the run.

Run with:  PYTHONPATH=src python examples/proc_cluster.py
"""

from repro.cluster.builders import build_proc_seemore
from repro.core import Mode
from repro.smr.ledger import find_safety_violations

NUM_REQUESTS = 120
NUM_PROCS = 4
WINDOW = 8


def main() -> None:
    print("=== SeeMoRe across OS processes (supervised, real TCP) ===\n")

    cluster = build_proc_seemore(
        mode=Mode.LION,
        num_procs=NUM_PROCS,
        num_requests=NUM_REQUESTS,
        window=WINDOW,
        stats_interval=0.1,
    )
    config = cluster.extras["config"]
    print(f"replica group : {config.network_size} replicas "
          f"({config.private_size} private, {config.public_size} public)")
    for name, members in cluster.extras["replica_groups"].items():
        print(f"  {name:<12}: {', '.join(members)}")
    print(f"  {'client':<12}: closed-loop driver, window {WINDOW}\n")

    result = cluster.run(timeout=60.0)
    if not result.met:
        raise SystemExit(
            f"cluster failed: deaths={result.deaths} errors={result.errors}"
        )

    completed = result.harvests["client"]["completed"]
    print(f"completed requests : {completed}")
    print(f"wall time          : {result.wall_seconds:.2f} s "
          f"({completed / result.wall_seconds:.0f} req/s across "
          f"{NUM_PROCS} replica processes)")
    print(f"messages delivered : {result.messages_delivered()}")
    print(f"bytes on the wire  : {result.bytes_delivered()}")

    print("\nper-node stats (collected over the control channel):")
    for node_id, stats in sorted(result.node_stats().items()):
        print(f"  {node_id:<16} busy {stats['busy_time']:.3f}s  "
              f"items {stats['items_processed']}")

    # The harvested ledgers let the parent run the same safety check the
    # in-process example runs on live replicas.
    ledgers = [
        data["ledger"]
        for name, harvest in result.harvests.items()
        if name.startswith("replicas-")
        for data in harvest.values()
    ]
    assert completed >= 100, "expected at least 100 commits"
    violations = find_safety_violations(ledgers)
    assert not violations, f"safety violated: {violations[0]}"
    assert result.deaths == [], f"unexpected worker deaths: {result.deaths}"
    assert set(result.exitcodes.values()) == {0}, result.exitcodes
    print("\nsafety check       : all replicas agree on the committed order")
    print("shutdown           : clean (all workers exited 0, all pipes closed)")


if __name__ == "__main__":
    main()
