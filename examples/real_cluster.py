#!/usr/bin/env python3
"""A real SeeMoRe cluster: four replicas speaking TCP on loopback.

Everything else in ``examples/`` runs on the deterministic discrete-event
simulator.  This example runs the *same protocol code* on the asyncio
runtime backend instead: each replica is an asyncio task with its own TCP
server on 127.0.0.1, messages are real bytes (the binary wire codec plus
a signature envelope), timers are real monotonic-clock timers, and a
closed-loop client drives load until at least 100 requests commit.

Run with:  PYTHONPATH=src python examples/real_cluster.py
"""

from repro.core import Mode, SeeMoReConfig, SeeMoReReplica, client_config_for_mode
from repro.crypto.keys import KeyStore
from repro.runtime.aio import AioRuntime
from repro.smr.client import Client
from repro.smr.ledger import find_safety_violations
from repro.workload.generator import Workload

NUM_REQUESTS = 120
WINDOW = 4


def main() -> None:
    print("=== SeeMoRe over real loopback TCP ===\n")

    # The smallest Lion deployment: c = 1, m = 0 gives a 2-replica private
    # cloud (the trusted primary lives there) and 2 public replicas — four
    # TCP servers in total.
    config = SeeMoReConfig.build(
        crash_tolerance=1,
        byzantine_tolerance=0,
        private_size=2,
        public_size=2,
        request_timeout=5.0,  # real seconds; loopback jitter must not look like a fault
    )
    print(f"replica group: {config.network_size} replicas "
          f"({config.private_size} private, {config.public_size} public)")
    print(f"mode: {Mode.LION.name} — trusted primary, f = c = 1\n")

    runtime = AioRuntime()
    workload = Workload.build("0/0")
    keystore = KeyStore(seed="real-cluster")
    for replica_id in config.all_replicas:
        keystore.register(replica_id)
    keystore.register("client-0")
    verifier = keystore.verifier()

    state_machine_factory = workload.state_machine_factory()
    replicas = {}
    for replica_id in config.all_replicas:
        replica = SeeMoReReplica(
            node_id=replica_id,
            runtime=runtime,
            config=config,
            signer=keystore.signer_for(replica_id),
            verifier=verifier,
            state_machine=state_machine_factory(),
            initial_mode=Mode.LION,
        )
        runtime.register(replica)
        replicas[replica_id] = replica

    client = Client(
        node_id="client-0",
        runtime=runtime,
        signer=keystore.signer_for("client-0"),
        verifier=verifier,
        config=client_config_for_mode(config, Mode.LION, request_timeout=2.0),
        operation_factory=workload.operation_factory(client_seed=0),
        max_requests=NUM_REQUESTS,
        window=WINDOW,
    )
    runtime.register(client)

    started = runtime.now
    finished = runtime.run(
        kickoff=client.start,
        until=lambda: client.completed_count >= NUM_REQUESTS,
        timeout=30.0,
    )
    elapsed = runtime.now - started

    if not finished:
        raise SystemExit(
            f"cluster timed out: {client.completed_count}/{NUM_REQUESTS} completed"
        )

    committed = min(replica.committed_count for replica in replicas.values())
    print(f"completed requests : {client.completed_count}")
    print(f"committed (min)    : {committed} per replica")
    print(f"wall time          : {elapsed:.2f} s "
          f"({client.completed_count / elapsed:.0f} req/s over real TCP)")
    print(f"client timeouts    : {client.timeouts}")
    print(f"bytes on the wire  : {runtime.bytes_delivered}")

    assert client.completed_count >= 100, "expected at least 100 commits"
    violations = find_safety_violations(
        [replica.ledger for replica in replicas.values()]
    )
    assert not violations, f"safety violated: {violations[0]}"
    print("\nsafety check       : all four replicas agree on the committed order")
    print("shutdown           : clean (all sockets closed, all tasks reaped)")


if __name__ == "__main__":
    main()
