#!/usr/bin/env python3
"""Sizing a public-cloud rental (Section 4 of the paper).

Answers the question a small enterprise asks before deploying SeeMoRe:
*how many servers do I need to rent, from which provider, to tolerate the
failures I care about?*  The example walks through:

* the worked example from the paper (S=2, c=1, alpha=0.3 -> rent 10 nodes);
* how the requirement changes with the advertised failure ratio;
* the explicit-failure-count model;
* choosing the cheapest allocation across several providers;
* when renting is pointless (private cloud already sufficient, or provider
  too unreliable).

Run with:  python examples/cloud_planner.py
"""

from repro.analysis import format_results_table
from repro.planner import (
    InfeasiblePlanError,
    plan_across_clouds,
    plan_with_explicit_failures,
    plan_with_failure_ratio,
    recommend_plan,
    rental_is_beneficial,
)
from repro.planner.multicloud import PublicCloudOffer


def main() -> None:
    print("=== Public cloud sizing (Section 4) ===\n")

    # --- the paper's worked example ------------------------------------------
    plan = plan_with_failure_ratio(private_size=2, crash_tolerance=1, malicious_ratio=0.3)
    print("Paper example: S=2 private servers, c=1, provider advertises alpha=0.3")
    print(f"  -> rent P={plan.public_nodes} nodes "
          f"(N={plan.network_size}, tolerates m={plan.byzantine_tolerance} Byzantine failures)\n")

    # --- sensitivity to the provider's failure ratio ----------------------------
    rows = []
    for alpha in (0.05, 0.1, 0.2, 0.3):
        p = plan_with_failure_ratio(2, 1, alpha)
        rows.append({
            "alpha": alpha,
            "rent": p.public_nodes,
            "network": p.network_size,
            "tolerated_m": p.byzantine_tolerance,
        })
    print("Rental size vs the provider's advertised failure ratio (S=2, c=1):")
    print(format_results_table(rows))
    print()

    # --- explicit failure counts --------------------------------------------------
    explicit = plan_with_explicit_failures(private_size=2, crash_tolerance=1, public_malicious=2)
    print("Provider instead guarantees at most M=2 concurrent malicious failures:")
    print(f"  -> rent P={explicit.public_nodes} nodes (N={explicit.network_size})\n")

    # --- multiple providers ----------------------------------------------------------
    offers = [
        PublicCloudOffer("budget-cloud", malicious_ratio=0.25, price_per_node=1.0, max_nodes=16),
        PublicCloudOffer("premium-cloud", malicious_ratio=0.10, price_per_node=2.5, max_nodes=16),
    ]
    option = plan_across_clouds(private_size=2, crash_tolerance=1, offers=offers)
    print("Cheapest allocation across two providers:")
    print(f"  allocation={option.allocation}  cost={option.total_cost:.1f}  "
          f"tolerates m={option.byzantine_tolerance}\n")

    # --- when renting makes no sense ---------------------------------------------------
    print("When is renting beneficial at all?")
    for private, crash in [(1, 1), (2, 1), (3, 1), (4, 2)]:
        beneficial = rental_is_beneficial(private, crash)
        verdict = "beneficial" if beneficial else "not needed / not useful"
        print(f"  S={private}, c={crash}: {verdict}")
    local = recommend_plan(5, 2, malicious_ratio=0.1)
    print(f"\nS=5, c=2 -> {local.rationale}")
    try:
        plan_with_failure_ratio(2, 1, malicious_ratio=0.4)
    except InfeasiblePlanError as error:
        print(f"alpha=0.4 provider -> rejected: {error}")


if __name__ == "__main__":
    main()
