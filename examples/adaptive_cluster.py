#!/usr/bin/env python3
"""The adaptive mode controller closing the loop of Section 5.4.

The scenario: a deployment hums along in the cheap **Lion** mode.  A
rented public-cloud replica turns Byzantine and starts equivocating on
its votes; correct replicas flag the conflicting votes as evidence, the
controller estimates an active Byzantine environment and escalates the
group to **Peacock** through the ordinary consensus-ordered mode switch.
When the attack subsides and a full quiet period passes, the controller
de-escalates back to **Lion** — nobody scripted either switch.

The example prints throughput per phase, the evidence the controller
aggregated, and its decision table, then verifies safety held throughout.

Run with:  python examples/adaptive_cluster.py
"""

from repro import Mode, build_seemore
from repro.adaptive import AdaptivePolicy
from repro.analysis import format_adaptive_decisions
from repro.faults import make_byzantine, restore_honest
from repro.workload import Workload


def completed_between(deployment, start, end):
    return len([r for r in deployment.metrics.records if start <= r.completed_at < end])


def main() -> None:
    print("=== Adaptive mode switching ===\n")

    deployment = build_seemore(
        crash_tolerance=1,
        byzantine_tolerance=1,
        mode=Mode.LION,
        workload=Workload.build("0/0"),
        num_clients=4,
        seed=21,
        client_timeout=0.1,
        adaptive=AdaptivePolicy(),  # or adaptive=True for the same defaults
    )
    controller = deployment.extras["adaptive"]
    simulator = deployment.simulator
    deployment.start_clients()

    # Phase 1: quiet environment, Lion.
    phase_start = simulator.now
    deployment.run(0.25)
    print(f"phase 1 (quiet, {controller.current_mode().name}): "
          f"{completed_between(deployment, phase_start, simulator.now)} requests")

    # Phase 2: a public replica starts equivocating on its votes.
    attacker = "public-3"
    make_byzantine(deployment, attacker, "equivocate")
    phase_start = simulator.now
    deployment.run(0.3)
    print(f"phase 2 (attack by {attacker}, now {controller.current_mode().name}): "
          f"{completed_between(deployment, phase_start, simulator.now)} requests")

    # Phase 3: the attack subsides; after the quiet period the controller
    # brings the group back to the cheap mode on its own.
    restore_honest(deployment, attacker)
    phase_start = simulator.now
    deployment.run(0.6)
    print(f"phase 3 (quiet again, back to {controller.current_mode().name}): "
          f"{completed_between(deployment, phase_start, simulator.now)} requests")

    deployment.stop_clients()
    deployment.run(0.2)

    counts = controller.estimator.counts_by_kind()
    print("\nevidence admitted:",
          ", ".join(f"{kind.value}={count}" for kind, count in sorted(
              counts.items(), key=lambda item: item[0].value)))
    print()
    print(format_adaptive_decisions(controller.decisions))

    deployment.assert_safe()
    print("\nsafety: no conflicting commits among correct replicas")
    assert controller.current_mode() is Mode.LION, "expected to end back in Lion"


if __name__ == "__main__":
    main()
