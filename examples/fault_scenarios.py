#!/usr/bin/env python3
"""Run named fault scenarios and print the matrix report.

The scenario engine (``repro.scenarios``) schedules timed faults — crashes,
Byzantine strategies, partitions, mode switches, load surges — against a
running deployment while invariant checkers sample the system continuously.
This example runs a few library scenarios across all three modes and prints
the summary table; pass scenario names as arguments to pick others.

Run with:  python examples/fault_scenarios.py [scenario ...]
"""

import sys

from repro.analysis import format_scenario_results
from repro.scenarios import SCENARIOS, run_scenario_matrix, scenario_by_name

DEFAULT_NAMES = [
    "primary-crash-mid-batch",
    "equivocating-public-primary",
    "mode-switch-under-load",
]


def main() -> None:
    names = sys.argv[1:] or DEFAULT_NAMES
    scenarios = [scenario_by_name(name) for name in names]
    print(f"running {len(scenarios)} scenario(s) x 3 modes "
          f"(library has {len(SCENARIOS)}: {', '.join(SCENARIOS)})\n")
    results = run_scenario_matrix(scenarios)
    print(format_scenario_results(results))
    if any(not result.ok for result in results):
        sys.exit(1)


if __name__ == "__main__":
    main()
