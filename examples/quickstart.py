#!/usr/bin/env python3
"""Quickstart: run SeeMoRe in the Lion mode and measure it.

This is the smallest end-to-end use of the library:

1. pick the fault thresholds (c crash failures in the private cloud,
   m Byzantine failures in the public cloud);
2. build a simulated deployment (replicas, network, closed-loop clients);
3. run it for a stretch of simulated time;
4. read off throughput/latency and check that all correct replicas agree.

Run with:  python examples/quickstart.py
"""

from repro import Mode, build_seemore, run_deployment
from repro.analysis import comparison_table, format_results_table


def main() -> None:
    print("=== SeeMoRe quickstart ===\n")

    # The paper's base configuration: c = 1 crash failure tolerated in the
    # private cloud, m = 1 Byzantine failure tolerated in the public cloud,
    # which yields N = 3m + 2c + 1 = 6 replicas (2 private + 4 public).
    deployment = build_seemore(
        crash_tolerance=1,
        byzantine_tolerance=1,
        mode=Mode.LION,
        num_clients=8,
        seed=42,
    )
    config = deployment.extras["config"]
    print(f"replica group: {config.network_size} replicas "
          f"({config.private_size} private, {config.public_size} public)")
    print(f"mode: {Mode.LION.name} — {Mode.LION.describe()}")
    print(f"quorum size: {config.quorum_size(Mode.LION)}\n")

    result = run_deployment(deployment, duration=1.0, warmup=0.2)

    print(f"completed requests : {result.completed}")
    print(f"throughput         : {result.throughput_kreqs:.2f} Kreq/s")
    print(f"mean latency       : {result.mean_latency_ms:.3f} ms")
    print(f"p99 latency        : {result.latency.p99 * 1000:.3f} ms")
    print(f"client timeouts    : {result.client_timeouts}")

    # Safety: every correct replica committed the same requests in the same
    # order (run_deployment already asserts this; shown here explicitly).
    deployment.assert_safe()
    print("\nsafety check       : all correct replicas agree on the committed order")

    print("\nProtocol comparison for this configuration (Table 1 of the paper):")
    print(format_results_table(comparison_table(crash_tolerance=1, byzantine_tolerance=1)))


if __name__ == "__main__":
    main()
