#!/usr/bin/env python3
"""Dynamic mode switching under a changing environment (Section 5.4).

The scenario: an enterprise starts in the **Lion** mode (fewest phases and
messages).  Later the private cloud becomes heavily loaded, so a trusted
replica switches the protocol to the **Dog** mode to push the agreement
work onto the public cloud; when the cross-cloud link becomes slow, it
switches again to the **Peacock** mode so requests never leave the public
cloud; finally it switches back to Lion when things calm down.

The example prints the throughput observed in each phase and verifies that
safety holds across every switch.

Run with:  python examples/mode_switching.py
"""

from repro import Mode, build_seemore
from repro.workload import Workload


def completed_between(deployment, start, end):
    return len([r for r in deployment.metrics.records if start <= r.completed_at < end])


def main() -> None:
    print("=== Dynamic mode switching ===\n")

    deployment = build_seemore(
        crash_tolerance=1,
        byzantine_tolerance=1,
        mode=Mode.LION,
        workload=Workload.build("0/0"),
        num_clients=6,
        seed=21,
        client_timeout=0.1,
    )
    config = deployment.extras["config"]
    simulator = deployment.simulator
    trusted = deployment.replicas[config.private_replicas[0]]

    phases = [
        (Mode.DOG, 0.4, "private cloud becomes loaded -> delegate agreement to proxies"),
        (Mode.PEACOCK, 0.8, "cross-cloud latency grows -> keep agreement in the public cloud"),
        (Mode.LION, 1.2, "load drops -> return to the cheapest mode"),
    ]

    deployment.start_clients()
    simulator.run(until=0.4)
    previous_boundary = 0.0
    print(f"[t=0.0-0.4s]  mode=LION     completed={completed_between(deployment, 0.0, 0.4):5d}")

    boundary = 0.4
    for target_mode, until, reason in phases:
        initiator = next(
            deployment.replicas[r]
            for r in config.private_replicas
            if not deployment.replicas[r].crashed
        )
        initiator.request_mode_switch(target_mode)
        next_until = until + 0.4
        simulator.run(until=next_until)
        completed = completed_between(deployment, boundary, next_until)
        modes = {replica.mode.name for replica in deployment.correct_replicas()}
        print(f"[t={boundary:.1f}-{next_until:.1f}s]  mode={target_mode.name:<8} "
              f"completed={completed:5d}   ({reason}; replicas now in {modes})")
        boundary = next_until

    deployment.stop_clients()
    deployment.assert_safe()
    print(f"\ntotal completed requests: {deployment.metrics.completed}")
    print("safety held across every mode switch (no conflicting commits).")


if __name__ == "__main__":
    main()
