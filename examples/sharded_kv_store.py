#!/usr/bin/env python3
"""A sharded key-value store: four SeeMoRe clusters, one keyspace.

The paper sizes ONE cluster for one trust mix; this example plays the
operator who has outgrown it: traffic no longer fits a single 3m+2c+1
group, so the keyspace is hash-partitioned across four clusters — each
free to run its own mode — and multi-key writes spanning shards commit
through the deterministic two-phase protocol, with every prepare/decide
record ordered by the participating shard's own consensus.

The example:

1. deploys 4 shards with mixed modes (Lion, Lion, Dog, Peacock) and a
   Zipfian key-value workload with 10% cross-shard transactions;
2. isolates one shard mid-run and heals it, showing transactions abort
   atomically while the rest of the keyspace keeps serving;
3. prints per-shard and aggregate throughput plus the 2PC counters and
   verifies per-shard safety and cross-shard atomicity.

Run with:  python examples/sharded_kv_store.py
"""

from repro.analysis import format_sharded_results
from repro.cluster import build_sharded_seemore
from repro.core import Mode
from repro.scenarios.sharded import HealShards, IsolateShard
from repro.shard import ShardSpec
from repro.workload import Workload, WorkloadSpec, per_shard_load


def main() -> None:
    print("=== Sharded SeeMoRe: four clusters, one keyspace ===\n")

    specs = (
        ShardSpec(mode=Mode.LION),
        ShardSpec(mode=Mode.LION),
        ShardSpec(mode=Mode.DOG),
        ShardSpec(mode=Mode.PEACOCK),
    )
    deployment = build_sharded_seemore(
        shard_specs=specs,
        workload=Workload.build(
            WorkloadSpec(
                kind="sharded-kv",
                key_space=1000,
                cross_shard_fraction=0.1,
                key_distribution="zipfian",
                seed=13,
            )
        ),
        num_clients=8,
        client_window=2,
        seed=13,
        txn_timeout=0.15,
        client_timeout=0.1,
    )
    print(f"deployed {deployment.num_shards} shards "
          f"({', '.join(spec.mode.name.lower() for spec in specs)}), "
          f"{sum(len(s.replicas) for s in deployment.shards)} replicas total\n")

    simulator = deployment.simulator
    simulator.call_at(0.4, lambda: IsolateShard(at=0.4, shard=3).apply(deployment))
    simulator.call_at(0.7, lambda: HealShards(at=0.7).apply(deployment))
    print("schedule: isolate shard 3 at t=0.4s, heal at t=0.7s\n")

    deployment.start_clients()
    simulator.run(until=1.2)
    deployment.stop_clients()
    simulator.run(until=1.5)

    rows = [summary.as_row() for summary in
            per_shard_load([shard.metrics for shard in deployment.shards])]
    aggregate = {
        "completed": deployment.metrics.completed,
        "throughput_kreqs_per_s": round(deployment.metrics.throughput() / 1000.0, 3),
    }
    print(format_sharded_results(rows, aggregate, deployment.transaction_stats()))

    deployment.assert_safe()
    print("\nper-shard safety and cross-shard atomicity verified: "
          f"{deployment.transaction_stats()['aborted']} transaction(s) aborted "
          "atomically during the isolation, none half-committed")


if __name__ == "__main__":
    main()
